(** The sharded grid: a searchability measurement plus a persisted
    partition of its flattened task range, the unit the fabric
    distributes (doc/FABRIC.md).

    The plan is written to [DIR/grid.sfg] (binary [scalefree.grid/1],
    strict codec) when a run starts and reloaded verbatim on resume:
    shard boundaries never move once trials have been checkpointed —
    resuming with a different worker count redistributes {e shards},
    not tasks. Everything downstream is a pure function of the plan,
    which is the byte-identity argument: workers run
    {!Sf_core.Searchability.run_grid_task} over their slice, the
    coordinator concatenates slices in task order and aggregates with
    the same fold {!Sf_core.Searchability.measure} uses. *)

type spec = {
  gs_model : string;  (** mori | cooper-frieze | cooper-frieze-giant | config *)
  gs_p : float;
  gs_m : int;
  gs_alpha : float;
  gs_exponent : float;
  gs_sizes : int list;
  gs_strategies : string list;
  gs_trials : int;
  gs_metric : [ `Neighbor | `Target ];
  gs_source : [ `Oldest | `Random ];
  gs_budget_mul : int;
  gs_budget_add : int;  (** request budget: [mul*n + add] *)
  gs_seed : int;
}

type plan = { p_spec : spec; p_shards : (int * int) array }
(** Contiguous [lo, hi) slices tiling [0, n_tasks) in order. *)

val validate : spec -> unit
(** @raise Invalid_argument on an unknown model or strategy, empty
    sizes/strategies, or the {!Sf_core.Searchability.validate_grid}
    failures. *)

val core_spec : spec -> Sf_core.Searchability.spec
val make_of_spec : spec -> Sf_prng.Rng.t -> int -> Sf_graph.Ugraph.t * int
val strategies_of_spec : spec -> Sf_search.Strategy.t list
val n_tasks : spec -> int

val rng_token : spec -> int64
(** {!Sf_prng.Rng.state_fingerprint} of the seed's master stream —
    stored in every checkpoint so a resume against the wrong seed is
    refused. *)

val make_plan : shards:int -> spec -> plan
(** Validate and partition [0, n_tasks) into [min shards n_tasks]
    near-equal contiguous slices. *)

(** {1 Plan persistence} *)

val encode : plan -> string
val decode : string -> plan
(** Strict ([scalefree.grid/1]): magic, version, CRC-32 tail, and the
    shards must tile the task range exactly.
    @raise Sf_store.Codec_error.Error otherwise. *)

val write_plan : dir:string -> plan -> unit
(** Create [dir] (and [dir/shards]) and atomically write [grid.sfg]
    plus the human-readable [grid.json] mirror. *)

val load_plan : dir:string -> plan * int32
(** The decoded plan and the CRC-32 of the plan file's bytes (the
    value checkpoints bind to). @raise Failure when no plan exists,
    [Sf_store.Codec_error.Error] on corruption. *)

val plan_crc : plan -> int32
(** CRC-32 of {!encode} — equals the [load_plan] value for a plan
    written by {!write_plan}. *)

(** {1 Directory layout} *)

val plan_path : string -> string
val json_path : string -> string
val shard_path : string -> int -> string
val csv_path : string -> string
val manifest_path : string -> string
val sock_path : string -> string
(** [DIR/fabric.sock] — the coordinator's default control socket. *)

val mkdir_p : string -> unit
val write_file_atomic : string -> string -> unit

(** {1 Deterministic outputs} *)

val outcomes_crc : (float * bool * bool) array -> int32
(** CRC-32 of the canonical binary rendering of the full outcome
    array — the digest the manifest pins. *)

val write_outputs :
  dir:string ->
  plan ->
  outcomes:(float * bool * bool) array ->
  counters:(string * int) list ->
  Sf_core.Searchability.point list
(** Aggregate the full outcome array and atomically write
    [measure.csv] and [manifest.json]. Both are byte-identical at any
    worker count and across any crash/resume history: the manifest's
    counter block keeps only the [search.*] family (generation and
    cache counters legitimately differ between crash histories when a
    corpus cache is shared). Returns the points. *)
