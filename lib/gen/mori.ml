module Rng = Sf_prng.Rng
module Digraph = Sf_graph.Digraph
module Vec = Sf_graph.Vec

(* Observability: attachment-step accounting (doc/OBSERVABILITY.md).
   The father-age histogram records which vertex each arrival attached
   to — the measured face of the age-degree law behind Lemma 2. *)
let obs_build_timer = Sf_obs.Registry.timer "gen.mori.build_s"
let obs_vertices = Sf_obs.Registry.counter "gen.mori.vertices"
let obs_pref_steps = Sf_obs.Registry.counter "gen.mori.steps.pref"
let obs_unif_steps = Sf_obs.Registry.counter "gen.mori.steps.unif"
let obs_father_age = Sf_obs.Registry.histo "gen.mori.father_age"

let check_params ~p ~t =
  if t < 2 then invalid_arg "Mori: need t >= 2";
  if p <= 0. || p > 1. then invalid_arg "Mori: need 0 < p <= 1"

(* Shared growth loop.  [restrict k] returns [Some a] when step [k] must
   attach inside [1..a] (conditioned sampling), [None] otherwise.  The
   destination list [dsts] realises indegree-preferential choice: vertex
   u appears in it exactly indegree(u) times, and conditional on the
   event prefix every entry is already <= a, so the restricted
   preferential branch needs no filtering. *)
let grow rng ~p ~t ~restrict =
  let obs = Sf_obs.Registry.enabled () in
  if obs then Sf_obs.Timer.start obs_build_timer;
  let tracing = Sf_obs.Trace.active () in
  (* at most 8 growth checkpoints per build, so tracing a microbench
     full of small builds stays proportionate *)
  let checkpoint_every = max 1 (t / 8) in
  if tracing then
    Sf_obs.Trace.emit "gen.mori.grow" Sf_obs.Trace.Begin
      ~args:[ ("t", Sf_obs.Trace.Int t); ("p", Sf_obs.Trace.Float p) ];
  let g = Digraph.create ~expected_vertices:t () in
  Digraph.add_vertices g 2;
  ignore (Digraph.add_edge g ~src:2 ~dst:1);
  let dsts = Vec.create ~capacity:t () in
  Vec.push dsts 1;
  for k = 3 to t do
    let edges_so_far = k - 2 in
    let pick_pref () =
      if obs then Sf_obs.Counter.incr obs_pref_steps;
      Vec.get dsts (Rng.int rng (Vec.length dsts))
    in
    let pick_unif bound =
      if obs then Sf_obs.Counter.incr obs_unif_steps;
      1 + Rng.int rng bound
    in
    let father =
      match restrict k with
      | None ->
        let pref_mass = p *. float_of_int edges_so_far in
        let unif_mass = (1. -. p) *. float_of_int (k - 1) in
        if Rng.unit_float rng *. (pref_mass +. unif_mass) < pref_mass then pick_pref ()
        else pick_unif (k - 1)
      | Some a ->
        let pref_mass = p *. float_of_int edges_so_far in
        let unif_mass = (1. -. p) *. float_of_int a in
        if Rng.unit_float rng *. (pref_mass +. unif_mass) < pref_mass then pick_pref ()
        else pick_unif a
    in
    let v = Digraph.add_vertex g in
    ignore (Digraph.add_edge g ~src:v ~dst:father);
    if obs then Sf_obs.Histo.observe_int obs_father_age father;
    if tracing && k mod checkpoint_every = 0 then
      Sf_obs.Trace.instant "gen.mori.checkpoint"
        ~args:
          [
            ("vertices", Sf_obs.Trace.Int k);
            ("last_father", Sf_obs.Trace.Int father);
          ];
    Vec.push dsts father
  done;
  if tracing then Sf_obs.Trace.emit "gen.mori.grow" Sf_obs.Trace.End;
  if obs then begin
    Sf_obs.Counter.add obs_vertices t;
    Sf_obs.Timer.stop obs_build_timer
  end;
  g

let tree rng ~p ~t =
  check_params ~p ~t;
  grow rng ~p ~t ~restrict:(fun _ -> None)

(* --- giant engine (doc/SCALING.md) --------------------------------

   Same growth law, same draw sequence, flat storage.  The boxed
   [Digraph] + per-vertex [Vec]s cost ~100 bytes per vertex and die at
   a few hundred thousand vertices; here the only growth state is the
   edge-endpoint store [dsts] — an unboxed int32 vector in which
   vertex u appears exactly indegree(u) times, so one uniform index
   draw is one indegree-preferential vertex draw, O(1) amortised per
   edge.  The result goes straight into CSR form without ever
   materialising a boxed graph.

   Draw-for-draw parity with [grow] is deliberate and tested: with
   the same stream, [tree_fathers] reproduces [tree]'s father
   sequence exactly, so the giant engine is not merely equal in law —
   it is the same random variable. *)

let grow_fathers rng ~p ~t =
  let obs = Sf_obs.Registry.enabled () in
  if obs then Sf_obs.Timer.start obs_build_timer;
  let tracing = Sf_obs.Trace.active () in
  let checkpoint_every = max 1 (t / 8) in
  if tracing then
    Sf_obs.Trace.emit "gen.mori.grow" Sf_obs.Trace.Begin
      ~args:[ ("t", Sf_obs.Trace.Int t); ("p", Sf_obs.Trace.Float p) ];
  let dsts = Sf_graph.Bigvec.create ~capacity:(max 16 (t - 1)) () in
  Sf_graph.Bigvec.push dsts 1;
  for k = 3 to t do
    let edges_so_far = k - 2 in
    let father =
      let pref_mass = p *. float_of_int edges_so_far in
      let unif_mass = (1. -. p) *. float_of_int (k - 1) in
      if Rng.unit_float rng *. (pref_mass +. unif_mass) < pref_mass then begin
        if obs then Sf_obs.Counter.incr obs_pref_steps;
        Sf_graph.Bigvec.unsafe_get dsts (Rng.int rng (Sf_graph.Bigvec.length dsts))
      end
      else begin
        if obs then Sf_obs.Counter.incr obs_unif_steps;
        1 + Rng.int rng (k - 1)
      end
    in
    if obs then Sf_obs.Histo.observe_int obs_father_age father;
    if tracing && k mod checkpoint_every = 0 then
      Sf_obs.Trace.instant "gen.mori.checkpoint"
        ~args:
          [ ("vertices", Sf_obs.Trace.Int k); ("last_father", Sf_obs.Trace.Int father) ];
    Sf_graph.Bigvec.push dsts father
  done;
  if tracing then Sf_obs.Trace.emit "gen.mori.grow" Sf_obs.Trace.End;
  if obs then begin
    Sf_obs.Counter.add obs_vertices t;
    Sf_obs.Timer.stop obs_build_timer
  end;
  dsts

let tree_fathers rng ~p ~t =
  check_params ~p ~t;
  grow_fathers rng ~p ~t

let graph_giant rng ~p ~m ~n =
  if m < 1 || n < 1 then invalid_arg "Mori.graph_giant: need m >= 1 and n >= 1";
  if n * m < 2 then invalid_arg "Mori.graph_giant: need n * m >= 2";
  let t = n * m in
  let fathers = tree_fathers rng ~p ~t in
  (* edge j of the tree joins vertex j+2 to fathers.(j); merging maps
     vertex v to group ((v-1)/m)+1, preserving edge ids and order *)
  let srcs_buf = Sf_graph.Bigvec.create_buf (t - 1) in
  let dsts_buf = Sf_graph.Bigvec.create_buf (t - 1) in
  let group v = ((v - 1) / m) + 1 in
  for j = 0 to t - 2 do
    Bigarray.Array1.unsafe_set srcs_buf j (Int32.of_int (group (j + 2)));
    Bigarray.Array1.unsafe_set dsts_buf j
      (Int32.of_int (group (Sf_graph.Bigvec.unsafe_get fathers j)))
  done;
  Sf_graph.Ugraph.of_csr (Sf_graph.Csr.of_endpoint_bufs ~n srcs_buf dsts_buf)

let tree_giant rng ~p ~t =
  check_params ~p ~t;
  graph_giant rng ~p ~m:1 ~n:t

let tree_conditioned rng ~p ~t ~a ~b =
  check_params ~p ~t;
  if a < 2 || a > b || b > t then invalid_arg "Mori.tree_conditioned: need 2 <= a <= b <= t";
  grow rng ~p ~t ~restrict:(fun k -> if k > a && k <= b then Some a else None)

let father g k =
  match Digraph.out_edges g k with
  | [ e ] -> e.Digraph.dst
  | [] -> invalid_arg "Mori.father: vertex has no out-edge"
  | _ -> invalid_arg "Mori.father: vertex has several out-edges"

let fathers g =
  let t = Digraph.n_vertices g in
  Array.init (t - 1) (fun i -> father g (i + 2))

let merge ~m g =
  if m < 1 then invalid_arg "Mori.merge: need m >= 1";
  let nm = Digraph.n_vertices g in
  if nm mod m <> 0 then invalid_arg "Mori.merge: m must divide the vertex count";
  if m = 1 then Digraph.copy g
  else begin
    let n = nm / m in
    let group v = ((v - 1) / m) + 1 in
    let g' = Digraph.create ~expected_vertices:n () in
    Digraph.add_vertices g' n;
    Digraph.iter_edges g (fun e ->
        ignore (Digraph.add_edge g' ~src:(group e.Digraph.src) ~dst:(group e.Digraph.dst)));
    g'
  end

let graph rng ~p ~m ~n =
  if m < 1 || n < 1 then invalid_arg "Mori.graph: need m >= 1 and n >= 1";
  if n * m < 2 then invalid_arg "Mori.graph: need n * m >= 2";
  merge ~m (tree rng ~p ~t:(n * m))

let expected_degree_exponent ~p =
  if p <= 0. || p > 1. then invalid_arg "Mori.expected_degree_exponent: need 0 < p <= 1";
  1. +. (1. /. p)
