module Rng = Sf_prng.Rng
module Digraph = Sf_graph.Digraph
module Vec = Sf_graph.Vec

(* Observability: NEW/OLD step mix and degree-update costs
   (doc/OBSERVABILITY.md). The out-degree histogram records how many
   edges each step had to wire — the per-step degree-update cost. *)
let obs_build_timer = Sf_obs.Registry.timer "gen.cf.build_s"
let obs_new_steps = Sf_obs.Registry.counter "gen.cf.steps.new"
let obs_old_steps = Sf_obs.Registry.counter "gen.cf.steps.old"
let obs_edges = Sf_obs.Registry.counter "gen.cf.edges"
let obs_step_out_degree = Sf_obs.Registry.histo "gen.cf.step_out_degree"

type out_degree_dist = (int * float) list
type preference = In_degree | Total_degree

type params = {
  alpha : float;
  beta : float;
  gamma : float;
  delta : float;
  q : out_degree_dist;
  p_dist : out_degree_dist;
  preference : preference;
}

let default =
  {
    alpha = 0.5;
    beta = 0.5;
    gamma = 0.5;
    delta = 0.5;
    q = [ (1, 0.5); (2, 0.5) ];
    p_dist = [ (1, 0.5); (2, 0.5) ];
    preference = In_degree;
  }

let validate_dist name dist =
  if dist = [] then Error (name ^ ": empty distribution")
  else if List.exists (fun (v, _) -> v < 1) dist then Error (name ^ ": out-degree values must be >= 1")
  else if List.exists (fun (_, p) -> p < 0.) dist then Error (name ^ ": negative probability")
  else begin
    let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. dist in
    if Float.abs (total -. 1.) > 1e-9 then Error (name ^ ": probabilities must sum to 1")
    else Ok ()
  end

let validate params =
  let in_unit name x = if x < 0. || x > 1. then Error (name ^ ": must lie in [0, 1]") else Ok () in
  let ( let* ) = Result.bind in
  let* () = in_unit "alpha" params.alpha in
  let* () = in_unit "beta" params.beta in
  let* () = in_unit "gamma" params.gamma in
  let* () = in_unit "delta" params.delta in
  let* () = validate_dist "q" params.q in
  validate_dist "p_dist" params.p_dist

let sample_dist rng dist =
  let u = Rng.unit_float rng in
  let rec go acc = function
    | [] -> fst (List.hd (List.rev dist))
    | (v, p) :: rest ->
      let acc = acc +. p in
      if u < acc then v else go acc rest
  in
  go 0. dist

let mean_out_degree dist = List.fold_left (fun acc (v, p) -> acc +. (float_of_int v *. p)) 0. dist

(* Growth state: the endpoint list realising degree-proportional choice.
   For indegree preference it records edge destinations; for total
   degree, both endpoints. *)
type state = { g : Digraph.t; ends : Vec.t; preference : preference }

let initial preference =
  let g = Digraph.create () in
  ignore (Digraph.add_vertex g);
  ignore (Digraph.add_edge g ~src:1 ~dst:1);
  let ends = Vec.create () in
  Vec.push ends 1;
  if preference = Total_degree then Vec.push ends 1;
  { g; ends; preference }

let preferential_vertex st rng = Vec.get st.ends (Rng.int rng (Vec.length st.ends))
let uniform_vertex st rng = 1 + Rng.int rng (Digraph.n_vertices st.g)

let record_edge st ~src ~dst =
  if Sf_obs.Registry.enabled () then Sf_obs.Counter.incr obs_edges;
  ignore (Digraph.add_edge st.g ~src ~dst);
  Vec.push st.ends dst;
  if st.preference = Total_degree then Vec.push st.ends src

let add_out_edges st rng ~src ~count ~pref_prob =
  for _ = 1 to count do
    let dst =
      if Rng.bernoulli rng pref_prob then preferential_vertex st rng
      else uniform_vertex st rng
    in
    record_edge st ~src ~dst
  done

let step ?(on_new = fun _ _ -> ()) st rng params =
  let obs = Sf_obs.Registry.enabled () in
  if Rng.bernoulli rng params.alpha then begin
    (* NEW: the new vertex is not a candidate endpoint of its own edges
       (endpoints are chosen among "existing" vertices first). *)
    let count = sample_dist rng params.q in
    if obs then begin
      Sf_obs.Counter.incr obs_new_steps;
      Sf_obs.Histo.observe_int obs_step_out_degree count
    end;
    let targets =
      List.init count (fun _ ->
          if Rng.bernoulli rng params.beta then preferential_vertex st rng
          else uniform_vertex st rng)
    in
    let v = Digraph.add_vertex st.g in
    List.iter (fun dst -> record_edge st ~src:v ~dst) targets;
    on_new v count
  end
  else begin
    let src =
      if Rng.bernoulli rng params.delta then uniform_vertex st rng
      else preferential_vertex st rng
    in
    let count = sample_dist rng params.p_dist in
    if obs then begin
      Sf_obs.Counter.incr obs_old_steps;
      Sf_obs.Histo.observe_int obs_step_out_degree count
    end;
    add_out_edges st rng ~src ~count ~pref_prob:params.gamma
  end

let check params =
  match validate params with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Cooper_frieze: " ^ msg)

let timed_build f =
  if Sf_obs.Registry.enabled () then Sf_obs.Timer.time obs_build_timer f else f ()

let checkpoint st =
  Sf_obs.Trace.instant "gen.cf.checkpoint"
    ~args:
      [
        ("vertices", Sf_obs.Trace.Int (Digraph.n_vertices st.g));
        ("edges", Sf_obs.Trace.Int (Digraph.n_edges st.g));
      ]

(* the grow span plus at most ~8 checkpoints per build, as for Mori *)
let traced_build ~target f =
  let tracing = Sf_obs.Trace.active () in
  if tracing then
    Sf_obs.Trace.emit "gen.cf.grow" Sf_obs.Trace.Begin
      ~args:[ ("target", Sf_obs.Trace.Int target) ];
  let g = timed_build (f ~tracing) in
  if tracing then
    Sf_obs.Trace.emit "gen.cf.grow" Sf_obs.Trace.End
      ~args:
        [
          ("vertices", Sf_obs.Trace.Int (Digraph.n_vertices g));
          ("edges", Sf_obs.Trace.Int (Digraph.n_edges g));
        ];
  g

let generate rng params ~steps =
  check params;
  if steps < 0 then invalid_arg "Cooper_frieze.generate: steps must be non-negative";
  traced_build ~target:steps (fun ~tracing () ->
      let st = initial params.preference in
      let every = max 1 (steps / 8) in
      for k = 1 to steps do
        step st rng params;
        if tracing && k mod every = 0 then checkpoint st
      done;
      st.g)

let generate_n_vertices rng params ~n =
  check params;
  if n < 1 then invalid_arg "Cooper_frieze.generate_n_vertices: need n >= 1";
  if params.alpha <= 0. then invalid_arg "Cooper_frieze.generate_n_vertices: alpha must be positive";
  traced_build ~target:n (fun ~tracing () ->
      let st = initial params.preference in
      let every = max 1 (n / 8) in
      let next = ref every in
      while Digraph.n_vertices st.g < n do
        step st rng params;
        if tracing && Digraph.n_vertices st.g >= !next then begin
          checkpoint st;
          next := !next + every
        end
      done;
      st.g)

(* --- giant engine (doc/SCALING.md) --------------------------------

   Flat-storage variant of the same evolution.  Two changes relative
   to [step]:

   - out-degree counts come from precompiled alias tables (O(1) per
     draw) instead of [sample_dist]'s linear scan over the support;
   - edges accumulate in unboxed int32 endpoint vectors and the final
     graph is built directly in CSR form, never materialising a boxed
     [Digraph].

   The endpoint store [ends] is the same edge-endpoint sampling
   structure as the legacy path, so preferential draws stay O(1).
   Because an alias draw consumes the stream differently from
   [sample_dist] (one [Rng.int] plus one [unit_float] versus a single
   [unit_float]), the giant path is equal to the legacy path {e in
   law}, not draw for draw; the chi-square battery in the tests pins
   the law. *)

module Bigvec = Sf_graph.Bigvec

type compiled_dist = { values : int array; alias : Sf_prng.Discrete.Alias.t }

let compile_dist dist =
  {
    values = Array.of_list (List.map fst dist);
    alias = Sf_prng.Discrete.Alias.create (Array.of_list (List.map snd dist));
  }

let sample_compiled rng cd = cd.values.(Sf_prng.Discrete.Alias.sample cd.alias rng)

type giant_state = {
  srcs : Bigvec.t;
  dsts : Bigvec.t;
  g_ends : Bigvec.t;
  mutable n : int;
  g_pref : preference;
}

let initial_giant preference =
  let st =
    {
      srcs = Bigvec.create ();
      dsts = Bigvec.create ();
      g_ends = Bigvec.create ();
      n = 1;
      g_pref = preference;
    }
  in
  Bigvec.push st.srcs 1;
  Bigvec.push st.dsts 1;
  Bigvec.push st.g_ends 1;
  if preference = Total_degree then Bigvec.push st.g_ends 1;
  st

let preferential_giant st rng =
  Bigvec.unsafe_get st.g_ends (Rng.int rng (Bigvec.length st.g_ends))

let uniform_giant st rng = 1 + Rng.int rng st.n

let record_edge_giant st ~src ~dst =
  if Sf_obs.Registry.enabled () then Sf_obs.Counter.incr obs_edges;
  Bigvec.push st.srcs src;
  Bigvec.push st.dsts dst;
  Bigvec.push st.g_ends dst;
  if st.g_pref = Total_degree then Bigvec.push st.g_ends src

let step_giant st rng params ~q_cd ~p_cd =
  let obs = Sf_obs.Registry.enabled () in
  if Rng.bernoulli rng params.alpha then begin
    (* NEW: endpoints are drawn before the vertex exists, exactly as in
       [step] — the newcomer is not a candidate for its own edges *)
    let count = sample_compiled rng q_cd in
    if obs then begin
      Sf_obs.Counter.incr obs_new_steps;
      Sf_obs.Histo.observe_int obs_step_out_degree count
    end;
    let targets = Array.make count 0 in
    for i = 0 to count - 1 do
      targets.(i) <-
        (if Rng.bernoulli rng params.beta then preferential_giant st rng
         else uniform_giant st rng)
    done;
    st.n <- st.n + 1;
    for i = 0 to count - 1 do
      record_edge_giant st ~src:st.n ~dst:targets.(i)
    done
  end
  else begin
    let src =
      if Rng.bernoulli rng params.delta then uniform_giant st rng
      else preferential_giant st rng
    in
    let count = sample_compiled rng p_cd in
    if obs then begin
      Sf_obs.Counter.incr obs_old_steps;
      Sf_obs.Histo.observe_int obs_step_out_degree count
    end;
    for _ = 1 to count do
      let dst =
        if Rng.bernoulli rng params.gamma then preferential_giant st rng
        else uniform_giant st rng
      in
      record_edge_giant st ~src ~dst
    done
  end

let generate_n_vertices_giant rng params ~n =
  check params;
  if n < 1 then invalid_arg "Cooper_frieze.generate_n_vertices_giant: need n >= 1";
  if params.alpha <= 0. then
    invalid_arg "Cooper_frieze.generate_n_vertices_giant: alpha must be positive";
  let q_cd = compile_dist params.q and p_cd = compile_dist params.p_dist in
  let tracing = Sf_obs.Trace.active () in
  if tracing then
    Sf_obs.Trace.emit "gen.cf.grow" Sf_obs.Trace.Begin
      ~args:[ ("target", Sf_obs.Trace.Int n) ];
  let st = initial_giant params.preference in
  timed_build (fun () ->
      let every = max 1 (n / 8) in
      let next = ref every in
      while st.n < n do
        step_giant st rng params ~q_cd ~p_cd;
        if tracing && st.n >= !next then begin
          Sf_obs.Trace.instant "gen.cf.checkpoint"
            ~args:
              [
                ("vertices", Sf_obs.Trace.Int st.n);
                ("edges", Sf_obs.Trace.Int (Bigvec.length st.srcs));
              ];
          next := !next + every
        end
      done);
  if tracing then
    Sf_obs.Trace.emit "gen.cf.grow" Sf_obs.Trace.End
      ~args:
        [
          ("vertices", Sf_obs.Trace.Int st.n);
          ("edges", Sf_obs.Trace.Int (Bigvec.length st.srcs));
        ];
  Sf_graph.Ugraph.of_csr (Sf_graph.Csr.of_bigvecs ~n:st.n st.srcs st.dsts)

let generate_n_vertices_traced rng params ~n =
  check params;
  if n < 1 then invalid_arg "Cooper_frieze.generate_n_vertices_traced: need n >= 1";
  if params.alpha <= 0. then
    invalid_arg "Cooper_frieze.generate_n_vertices_traced: alpha must be positive";
  let st = initial params.preference in
  let arrivals = ref [ (1, 1) ] (* vertex 1 is born with its self-loop *) in
  let on_new v count = arrivals := (v, count) :: !arrivals in
  while Digraph.n_vertices st.g < n do
    step ~on_new st rng params
  done;
  let arrival = Array.make (Digraph.n_vertices st.g) 0 in
  List.iter (fun (v, count) -> arrival.(v - 1) <- count) !arrivals;
  (st.g, arrival)
