(** The Cooper–Frieze general web-graph model (the model of Theorem 2).

    Evolution from an initial single vertex carrying a self-loop. At
    each step:

    - with probability [alpha], procedure {b NEW}: add a new vertex
      with [j ~ q] outgoing edges; each edge's endpoint is chosen
      {e preferentially} with probability [beta], else uniformly;
    - with probability [1 - alpha], procedure {b OLD}: pick an existing
      source vertex — uniformly with probability [delta], else
      preferentially — and give it [j ~ p_dist] new outgoing edges,
      each endpoint chosen preferentially with probability [gamma],
      else uniformly.

    "Preferentially" means proportional to indegree by default (the
    paper's rephrasing, which widens the admissible parameter range) or
    to total degree ([`Total_degree]); uniform means uniform over the
    current vertex set. The graph is connected by construction and
    keeps all self-loops and parallel edges.

    The out-degree laws [q] and [p_dist] are finite-support
    distributions, which covers every regime the experiments evaluate
    (Cooper–Frieze themselves require bounded support for most
    results). *)

type out_degree_dist = (int * float) list
(** [(value, probability)] pairs; values [>= 1], probabilities summing
    to 1 (within 1e-9). *)

type preference = In_degree | Total_degree

type params = {
  alpha : float; (** probability of a NEW step; [0 < alpha < 1] for Theorem 2 *)
  beta : float; (** NEW-edge endpoint: preferential with this probability *)
  gamma : float; (** OLD-edge endpoint: preferential with this probability *)
  delta : float; (** OLD source: uniform with this probability *)
  q : out_degree_dist; (** out-degrees of NEW vertices *)
  p_dist : out_degree_dist; (** out-degrees added by OLD steps *)
  preference : preference;
}

val default : params
(** [alpha = 1/2], all endpoint mixes [1/2], out-degrees uniform on
    [{1, 2}], indegree preference. *)

val validate : params -> (unit, string) result

val generate : Sf_prng.Rng.t -> params -> steps:int -> Sf_graph.Digraph.t
(** Run exactly [steps] evolution steps from the initial graph.
    @raise Invalid_argument if [validate] fails. *)

val generate_n_vertices : Sf_prng.Rng.t -> params -> n:int -> Sf_graph.Digraph.t
(** Run steps until the graph has [n] vertices (so the number of steps
    is random, geometric in [alpha]); vertex [n] is the last arrival,
    the search target of Theorem 2. @raise Invalid_argument if
    [validate] fails or [n < 1]. *)

val generate_n_vertices_giant : Sf_prng.Rng.t -> params -> n:int -> Sf_graph.Ugraph.t
(** Flat-storage counterpart of {!generate_n_vertices}: out-degree
    counts come from precompiled alias tables (O(1) per draw instead
    of a scan over the support) and edges accumulate in unboxed int32
    vectors feeding a direct CSR build, so graphs with 10^7 vertices
    fit comfortably in memory (doc/SCALING.md).  Same evolution, same
    parameter checks; equal to {!generate_n_vertices} {e in law} but
    not draw for draw — the alias draw consumes the random stream
    differently, so the two paths diverge samplewise. *)

val generate_n_vertices_traced :
  Sf_prng.Rng.t -> params -> n:int -> Sf_graph.Digraph.t * int array
(** Like {!generate_n_vertices}, but also returns each vertex's
    {e arrival out-degree} — the number of edges it was born with
    ([a.(v-1)]; vertex 1's initial self-loop counts as 1). A vertex
    whose final out-degree exceeds its arrival out-degree was later
    used as an OLD-step source; the Theorem 2 equivalence event needs
    to rule that out for the candidate window. *)

val mean_out_degree : out_degree_dist -> float
