(** The Móri random tree and the merged m-out Móri graph (the models of
    Theorem 1).

    Growth process, exactly as the paper states it: at time [t = 2] the
    tree has vertices [1, 2] and the single edge [2 -> 1]; at each later
    time a new vertex [t] is added together with one outgoing edge to an
    older vertex [u] chosen with probability proportional to

    {[ p * indegree_t(u) + (1 - p) ]}

    i.e. with probability [p] (of the total weight) preferentially by
    {e indegree} and with weight [(1-p)] per vertex uniformly. The
    parameter range is [0 < p <= 1]; [p = 1] is pure preferential
    attachment on indegree, and small [p] approaches the uniform random
    recursive tree.

    Sampling is exact: with probability [p·(t-2) / (p·(t-2) + (1-p)·(t-1))]
    the father is a uniform entry of the edge-destination list (which
    realises indegree-proportional choice), otherwise a uniform vertex.

    The {e merged} graph [G_t^(m)] takes the Móri tree on [n·m] vertices
    and merges consecutive blocks of [m] vertices; self-loops and
    parallel edges produced by merging are preserved. *)

val tree : Sf_prng.Rng.t -> p:float -> t:int -> Sf_graph.Digraph.t
(** [tree rng ~p ~t] grows the Móri tree [G_t] on vertices [1..t].
    Vertex [k >= 2] has exactly one out-edge, created at time [k]; edge
    id [k-2] is that edge, so edge ids are insertion timestamps.
    @raise Invalid_argument unless [t >= 2] and [0 < p <= 1]. *)

val tree_conditioned :
  Sf_prng.Rng.t -> p:float -> t:int -> a:int -> b:int -> Sf_graph.Digraph.t
(** Exact sampling of [G_t] {e conditioned on the event} [E_{a,b}] of
    Lemma 2 (every vertex in [(a, b]] attaches to a vertex [<= a]).
    Conditioning is done step by step — conditional on the event's
    prefix, the indegree mass reachable by a constrained step lives
    entirely in [[1, a]], so the restricted step remains exactly
    sampleable (no rejection). Used by the equivalence tests.
    @raise Invalid_argument unless [2 <= a <= b <= t]. *)

val tree_fathers : Sf_prng.Rng.t -> p:float -> t:int -> Sf_graph.Bigvec.t
(** [tree_fathers rng ~p ~t] grows the same tree as {!tree} but keeps
    only the father sequence in flat int32 storage: entry [k-2] is the
    father of vertex [k].  Draw-for-draw identical to {!tree} — with
    the same stream the two produce the same sequence (the equivalence
    tests pin this), so results are interchangeable, not merely equal
    in law.  Peak memory is ~4 bytes per vertex instead of the boxed
    graph's ~100, which is what makes [t = 10^7] routine
    (doc/SCALING.md).
    @raise Invalid_argument unless [t >= 2] and [0 < p <= 1]. *)

val tree_giant : Sf_prng.Rng.t -> p:float -> t:int -> Sf_graph.Ugraph.t
(** [tree_giant rng ~p ~t] is {!tree_fathers} materialised as a
    CSR-backed undirected graph, equal to
    [Ugraph.of_digraph (tree rng ~p ~t)] on the same stream. *)

val graph_giant : Sf_prng.Rng.t -> p:float -> m:int -> n:int -> Sf_graph.Ugraph.t
(** [graph_giant rng ~p ~m ~n] is the m-out Móri graph of {!graph}
    built directly in CSR form: the father sequence is mapped through
    the block-merge projection edge by edge, skipping the boxed
    intermediate tree entirely.  Equal (same edge ids, same endpoints)
    to [Ugraph.of_digraph (graph rng ~p ~m ~n)] on the same stream.
    Requires [n·m >= 2]. *)

val father : Sf_graph.Digraph.t -> int -> int
(** [father tree k] is [N_k], the destination of [k]'s out-edge
    (defined for [k >= 2] in a Móri tree).
    @raise Invalid_argument if [k] has no out-edge. *)

val fathers : Sf_graph.Digraph.t -> int array
(** [fathers tree] lists [N_2 .. N_t] ([a.(k-2)] = father of [k]). *)

val merge : m:int -> Sf_graph.Digraph.t -> Sf_graph.Digraph.t
(** [merge ~m g] merges vertex blocks [m(i-1)+1 .. mi] of [g] into
    vertex [i]. Requires [m >= 1] and [m] dividing [n_vertices g].
    Every edge of [g] survives (possibly as a self-loop). *)

val graph : Sf_prng.Rng.t -> p:float -> m:int -> n:int -> Sf_graph.Digraph.t
(** [graph rng ~p ~m ~n] is the m-out Móri graph [G^(m)] on [n]
    vertices: the tree on [n·m] vertices merged by blocks of [m].
    Requires [n·m >= 2]. *)

val expected_degree_exponent : p:float -> float
(** The density exponent of the indegree power law predicted for this
    indegree-based model: with attachment weight [∝ indeg + (1-p)/p]
    the Dorogovtsev–Mendes–Samukhin formula gives [γ = 2 + (1-p)/p =
    1 + 1/p]. So [p = 1/2] reproduces the Barabási–Albert exponent 3,
    and the real-network range [γ ∈ \[2, 3\]] corresponds to
    [p ∈ \[1/2, 1)]. At [p = 1] exactly the model degenerates (vertex
    2 keeps weight 0 and the tree is a star), so no power law. *)
