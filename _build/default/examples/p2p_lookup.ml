(* P2P lookup study — the scenario that motivates the paper.

   A Gnutella-like unstructured peer-to-peer network is modelled (as in
   Adamic et al. [ALPH01]) by a power-law random graph with exponent
   between 2 and 3.  Peers know their neighbours (the strong local
   model).  We compare the classic lookup disciplines and then show how
   the picture changes on an *evolving* scale-free network (the Mori
   graph), where the paper proves no strategy can be fast.

   Run with:  dune exec examples/p2p_lookup.exe *)

let lookup_experiment name u strategies ~trials ~rng =
  let n = Sf_graph.Ugraph.n_vertices u in
  Printf.printf "%s (%s peers, %s links)\n" name
    (Sf_stats.Table.fmt_int_grouped n)
    (Sf_stats.Table.fmt_int_grouped (Sf_graph.Ugraph.n_edges u));
  List.iter
    (fun strategy ->
      let costs = Sf_stats.Summary.create () in
      let misses = ref 0 in
      for trial = 1 to trials do
        let trial_rng = Sf_prng.Rng.split_at rng trial in
        let source = 1 + Sf_prng.Rng.int trial_rng n in
        let target = 1 + Sf_prng.Rng.int trial_rng n in
        if source <> target then begin
          let outcome =
            Sf_search.Runner.search ~budget:(8 * n) ~rng:trial_rng u strategy ~source ~target
          in
          match outcome.Sf_search.Runner.to_target with
          | Some requests -> Sf_stats.Summary.add_int costs requests
          | None -> incr misses
        end
      done;
      Printf.printf "  %-16s mean %8.1f peers contacted   median %8.1f   misses %d\n"
        strategy.Sf_search.Strategy.name (Sf_stats.Summary.mean costs)
        (Sf_stats.Summary.mean costs)
        !misses)
    strategies;
  print_newline ()

let () =
  let rng = Sf_prng.Rng.of_seed 2007 in
  let trials = 25 in
  let n = 20_000 in

  Printf.printf "=== Unstructured P2P lookup: who should you ask first? ===\n\n";

  (* 1. The Adamic et al. world: a pure power-law random graph
     (configuration model), exponent 2.3 like measured Gnutella. *)
  let gnutella =
    Sf_graph.Ugraph.of_digraph
      (Sf_gen.Config_model.searchable_power_law (Sf_prng.Rng.split rng) ~n ~exponent:2.3 ())
  in
  lookup_experiment "Gnutella-like configuration-model network" gnutella
    [
      Sf_search.Strategies.strong_high_degree;
      Sf_search.Strategies.strong_random_walk;
      Sf_search.Strategies.strong_seq;
    ]
    ~trials ~rng:(Sf_prng.Rng.split rng);
  Printf.printf
    "  -> asking high-degree peers first wins by a wide margin, as Adamic et al.\n\
    \     predicted: neighbour degrees are independent, so climbing the degree\n\
    \     sequence covers most of the network's edges quickly.\n\n";

  (* 2. The same contest on an evolving scale-free network of the same
     size: a Mori graph.  Degrees and ages are correlated here, and the
     paper proves *every* local strategy needs Omega(sqrt n) requests to
     find a recent peer. *)
  let p = 0.6 in
  let bound = Sf_core.Lower_bound.theorem1 ~p ~m:2 ~n in
  let mori =
    Sf_graph.Ugraph.of_digraph
      (Sf_gen.Mori.graph (Sf_prng.Rng.split rng) ~p ~m:2
         ~n:bound.Sf_core.Lower_bound.graph_size)
  in
  Printf.printf "Evolving scale-free network (Mori graph, p = %.1f): find the newest peer\n" p;
  List.iter
    (fun strategy ->
      let costs = Sf_stats.Summary.create () in
      for trial = 1 to trials do
        let trial_rng = Sf_prng.Rng.split_at rng (1000 + trial) in
        let outcome =
          Sf_search.Runner.search ~rng:trial_rng mori strategy ~source:1 ~target:n
        in
        match outcome.Sf_search.Runner.to_neighbor with
        | Some requests -> Sf_stats.Summary.add_int costs requests
        | None -> Sf_stats.Summary.add_int costs outcome.Sf_search.Runner.total_requests
      done;
      Printf.printf "  %-16s mean %8.1f requests to reach the newest peer's neighbourhood\n"
        strategy.Sf_search.Strategy.name (Sf_stats.Summary.mean costs))
    (Sf_search.Strategies.weak_portfolio ());
  Printf.printf
    "\n  -> every discipline pays thousands of requests: the paper's Theorem 1 says\n\
    \     >= %.1f on average is unavoidable (Omega(sqrt n)), because the newest\n\
    \     ~sqrt(n) peers are probabilistically interchangeable. Degree-seeking\n\
    \     cannot help - the hubs are the *old* peers, all equally far from every\n\
    \     interchangeable newcomer.\n"
    bound.Sf_core.Lower_bound.requests
