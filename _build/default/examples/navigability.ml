(* Navigability: what scale-free graphs are missing.

   Kleinberg's small-world lattice is navigable when (and only when)
   the long-range links follow the inverse-square law r = 2: greedy
   geographic routing then takes O(log^2 n) hops.  This example sweeps
   r and contrasts the outcome with local search on a scale-free graph
   of the same size, where no metric exists to be greedy about.

   Run with:  dune exec examples/navigability.exe *)

let mean_route rng t ~trials =
  let side = t.Sf_gen.Kleinberg.side in
  let u = Sf_graph.Ugraph.of_digraph t.Sf_gen.Kleinberg.graph in
  let dist = Sf_gen.Kleinberg.lattice_distance ~side in
  let n = side * side in
  let costs = Sf_stats.Summary.create () in
  for _ = 1 to trials do
    let source = 1 + Sf_prng.Rng.int rng n in
    let target = 1 + Sf_prng.Rng.int rng n in
    if source <> target then begin
      let res =
        Sf_search.Geo_routing.greedy u ~dist ~source ~target ~max_steps:(16 * n)
      in
      if res.Sf_search.Geo_routing.reached then
        Sf_stats.Summary.add costs (float_of_int res.Sf_search.Geo_routing.steps)
    end
  done;
  Sf_stats.Summary.mean costs

let () =
  let rng = Sf_prng.Rng.of_seed 11 in
  let side_small = 24 and side = 96 in
  let n = side * side in
  let trials = 60 in

  Printf.printf "=== Greedy routing on Kleinberg tori: %dx%d vs %dx%d ===\n\n" side_small
    side_small side side;
  Printf.printf "  r    hops @ n=%-6d hops @ n=%-6d growth (x%d nodes)\n" (side_small * side_small)
    n
    (n / (side_small * side_small));
  List.iter
    (fun r ->
      let t_small =
        Sf_gen.Kleinberg.generate (Sf_prng.Rng.split rng) ~side:side_small ~r ~q:1 ()
      in
      let t_large = Sf_gen.Kleinberg.generate (Sf_prng.Rng.split rng) ~side ~r ~q:1 () in
      let h_small = mean_route (Sf_prng.Rng.split rng) t_small ~trials in
      let h_large = mean_route (Sf_prng.Rng.split rng) t_large ~trials in
      Printf.printf "  %.1f  %10.1f      %10.1f      %8.2f\n" r h_small h_large
        (h_large /. Float.max 1. h_small))
    [ 0.; 1.; 2.; 3.; 4. ];
  Printf.printf
    "\n  -> r = 2 is the asymptotic optimum (log^2 n routing; every other r is\n\
    \     polynomial). Above r = 2 the polynomial growth is already visible in\n\
    \     the growth column. Below r = 2 the polynomial exponent (2-r)/3 is so\n\
    \     small that truly separating it from log^2 needs graphs far beyond\n\
    \     simulation size - the optimum measured at finite n drifts up toward 2,\n\
    \     a well-known finite-size effect. The point for this paper stands\n\
    \     either way: with the right metric, tens of hops suffice.\n\n";

  Printf.printf "=== The same budget on a scale-free graph of equal size ===\n\n";
  let p = 0.75 in
  let bound = Sf_core.Lower_bound.theorem1 ~p ~m:1 ~n in
  let g =
    Sf_gen.Mori.tree (Sf_prng.Rng.split rng) ~p ~t:bound.Sf_core.Lower_bound.graph_size
  in
  let u = Sf_graph.Ugraph.of_digraph g in
  let best = ref infinity and best_name = ref "" in
  List.iter
    (fun strategy ->
      let costs = Sf_stats.Summary.create () in
      for trial = 1 to 15 do
        let trial_rng = Sf_prng.Rng.split_at rng trial in
        let outcome =
          Sf_search.Runner.search ~stop_at:Sf_search.Runner.At_neighbor ~rng:trial_rng u
            strategy ~source:1 ~target:n
        in
        match outcome.Sf_search.Runner.to_neighbor with
        | Some requests -> Sf_stats.Summary.add_int costs requests
        | None -> Sf_stats.Summary.add_int costs outcome.Sf_search.Runner.total_requests
      done;
      let mean = Sf_stats.Summary.mean costs in
      Printf.printf "  %-16s %8.1f requests\n" strategy.Sf_search.Strategy.name mean;
      if mean < !best then begin
        best := mean;
        best_name := strategy.Sf_search.Strategy.name
      end)
    (Sf_search.Strategies.weak_portfolio ());
  Printf.printf
    "\n  Kleinberg at r = 2 routes in tens of hops; on the Mori graph even the best\n\
    \  strategy (%s, %.0f requests) cannot beat the proved bound of %.1f - there is\n\
    \  no hidden metric for identities in [1, n], and Theorem 1 shows none exists.\n"
    !best_name !best bound.Sf_core.Lower_bound.requests
