examples/quickstart.mli:
