examples/degree_evolution.ml: Array Hashtbl List Printf Sf_core Sf_gen Sf_graph Sf_prng Sf_stats
