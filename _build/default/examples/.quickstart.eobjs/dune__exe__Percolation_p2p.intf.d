examples/percolation_p2p.mli:
