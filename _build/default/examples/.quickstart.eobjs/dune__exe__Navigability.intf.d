examples/navigability.mli:
