examples/equivalence_demo.mli:
