examples/percolation_p2p.ml: List Printf Sf_gen Sf_graph Sf_prng Sf_search Sf_stats
