examples/degree_evolution.mli:
