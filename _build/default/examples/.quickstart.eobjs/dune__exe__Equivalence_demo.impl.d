examples/equivalence_demo.ml: Float Hashtbl List Option Printf Sf_core Sf_graph Sf_stats
