examples/navigability.ml: Float List Printf Sf_core Sf_gen Sf_graph Sf_prng Sf_search Sf_stats
