(* The age-degree law: why the oldest vertices are the hubs.

   The attachment rule gives an exact recurrence for the expected
   indegree of each vertex; this demo evaluates it (no mean-field
   hand-waving), compares it with simulation, and shows the (t/s)^p
   growth that makes age and degree inseparable in evolving models -
   the structural fact behind both the degree power law and the
   non-searchability proof's need to *condition* recent vertices into
   exchangeability.

   Run with:  dune exec examples/degree_evolution.exe *)

let () =
  let p = 0.6 in
  let t = 50_000 in
  let rng = Sf_prng.Rng.of_seed 99 in
  let trials = 40 in

  Printf.printf "Mori model, p = %.1f, t = %s: expected indegree of vertex v\n\n" p
    (Sf_stats.Table.fmt_int_grouped t);

  (* simulate to compare with the exact recurrence *)
  let sums = Hashtbl.create 16 in
  let watch = [ 1; 10; 100; 1_000; 10_000 ] in
  for _ = 1 to trials do
    let g = Sf_gen.Mori.tree (Sf_prng.Rng.split rng) ~p ~t in
    List.iter
      (fun v ->
        let prev = try Hashtbl.find sums v with Not_found -> 0 in
        Hashtbl.replace sums v (prev + Sf_graph.Digraph.in_degree g v))
      watch
  done;

  Printf.printf "  vertex v   exact E[d]   simulated   (t/v)^p scale\n";
  List.iter
    (fun v ->
      let exact = Sf_core.Moments.expected_indegree ~p ~v ~t in
      let sim = float_of_int (Hashtbl.find sums v) /. float_of_int trials in
      let scale = (float_of_int t /. float_of_int v) ** p in
      Printf.printf "  %8s   %10.2f   %9.2f   %12.1f\n"
        (Sf_stats.Table.fmt_int_grouped v)
        exact sim scale)
    watch;

  Printf.printf
    "\n  -> the exact recurrence matches simulation, and degrees scale like\n\
    \     (t/v)^p: vertex age determines expected degree. Inverting the law\n\
    \     P(d_v > x) = P(v < t x^{-1/p}) gives the degree power law with\n\
    \     density exponent 1 + 1/p = %.2f (experiment T9), and vertex 1's\n\
    \     expectation ~ t^p is Mori's max-degree law (experiment T8).\n\n"
    (Sf_gen.Mori.expected_degree_exponent ~p);

  (* the whole profile sums to the edge count - an exact invariant *)
  let small_t = 2_000 in
  let profile = Sf_core.Moments.expected_indegree_profile ~p ~t:small_t in
  let total = Array.fold_left ( +. ) 0. profile in
  Printf.printf "exact invariant at t = %d: profile sums to %.6f = edges (%d)\n" small_t total
    (small_t - 1);

  (* and the age-degree correlation the searcher cannot escape *)
  let g = Sf_gen.Mori.tree (Sf_prng.Rng.split rng) ~p ~t:20_000 in
  let u = Sf_graph.Ugraph.of_digraph g in
  Printf.printf
    "measured age-degree Spearman correlation at t = 20000: %.3f\n\
     (the configuration model's is ~0: that is experiment T15's contrast)\n"
    (Sf_graph.Correlation.age_degree_spearman u)
