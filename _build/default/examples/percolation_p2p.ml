(* Percolation search: buying back searchability with replication.

   Sarshar, Boykin & Roychowdhury's protocol for unstructured P2P
   networks: every content owner replicates along a short random walk;
   a querier seeds a walk of its own and then broadcasts the query over
   each link independently with probability q (bond percolation).  On a
   power-law network, walks concentrate on hubs, so replicas and
   queries meet there: above the percolation threshold the hit rate
   jumps to ~1 while only a vanishing fraction of peers is contacted.

   Run with:  dune exec examples/percolation_p2p.exe *)

let run_setting rng u ~walks ~q ~trials =
  let n = Sf_graph.Ugraph.n_vertices u in
  let params =
    {
      Sf_search.Percolation.replication_walk = walks;
      query_walk = walks;
      broadcast_prob = q;
      max_messages = 16 * n;
    }
  in
  let hits = ref 0 in
  let messages = Sf_stats.Summary.create () in
  let contacted = Sf_stats.Summary.create () in
  for _ = 1 to trials do
    let source = 1 + Sf_prng.Rng.int rng n in
    let target = 1 + Sf_prng.Rng.int rng n in
    if source <> target then begin
      let r = Sf_search.Percolation.run rng u params ~source ~target in
      if r.Sf_search.Percolation.hit then incr hits;
      Sf_stats.Summary.add_int messages r.Sf_search.Percolation.messages;
      Sf_stats.Summary.add_int contacted r.Sf_search.Percolation.contacted
    end
  done;
  ( float_of_int !hits /. float_of_int trials,
    Sf_stats.Summary.mean messages,
    Sf_stats.Summary.mean contacted /. float_of_int n )

let () =
  let rng = Sf_prng.Rng.of_seed 404 in
  let n = 30_000 in
  let trials = 25 in
  let g =
    Sf_gen.Config_model.searchable_power_law (Sf_prng.Rng.split rng) ~n ~exponent:2.2 ()
  in
  let u = Sf_graph.Ugraph.of_digraph g in
  let n' = Sf_graph.Ugraph.n_vertices u in
  let root_n = int_of_float (ceil (sqrt (float_of_int n'))) in
  Printf.printf "power-law P2P network: %s peers (exponent 2.2)\n\n"
    (Sf_stats.Table.fmt_int_grouped n');

  (* Regime 1: sqrt(n)-length walks on both sides. Walks concentrate on
     hubs, so replica walk and query walk intersect almost surely
     before any broadcast is even needed. *)
  Printf.printf
    "regime 1 - sqrt(n) walks (length %d) on both sides, no reliance on broadcast:\n"
    root_n;
  let hit_rate, msgs, frac =
    run_setting (Sf_prng.Rng.split rng) u ~walks:root_n ~q:0.0 ~trials
  in
  Printf.printf
    "  hit rate %.2f with %.0f messages (%.4f of the network) - hub-concentrated\n\
    \  walks already intersect, Sarshar et al.'s core observation.\n\n"
    hit_rate msgs frac;

  (* Regime 2: minimal replication (short walk), query spreads only by
     bond percolation - the q-transition becomes visible. *)
  Printf.printf
    "regime 2 - short replication walk (length 8), query spreads by percolation only:\n";
  Printf.printf "  broadcast q   hit rate   mean messages   fraction of peers contacted\n";
  List.iter
    (fun q ->
      let params =
        {
          Sf_search.Percolation.replication_walk = 8;
          query_walk = 0;
          broadcast_prob = q;
          max_messages = 16 * n';
        }
      in
      let hits = ref 0 in
      let messages = Sf_stats.Summary.create () in
      let contacted = Sf_stats.Summary.create () in
      let rng' = Sf_prng.Rng.split rng in
      for _ = 1 to trials do
        let source = 1 + Sf_prng.Rng.int rng' n' in
        let target = 1 + Sf_prng.Rng.int rng' n' in
        if source <> target then begin
          let r = Sf_search.Percolation.run rng' u params ~source ~target in
          if r.Sf_search.Percolation.hit then incr hits;
          Sf_stats.Summary.add_int messages r.Sf_search.Percolation.messages;
          Sf_stats.Summary.add_int contacted r.Sf_search.Percolation.contacted
        end
      done;
      Printf.printf "     %4.2f        %5.2f     %10.0f        %6.3f\n" q
        (float_of_int !hits /. float_of_int trials)
        (Sf_stats.Summary.mean messages)
        (Sf_stats.Summary.mean contacted /. float_of_int n'))
    [ 0.02; 0.05; 0.1; 0.25; 0.5; 1.0 ];
  Printf.printf
    "\n  -> the percolation transition: below the threshold the query cluster dies\n\
    \     out and lookups fail; above it the cluster reaches the hubs holding the\n\
    \     replicas. Replication converts an unsearchable network into a\n\
    \     searchable service - exactly the workaround the paper's lower bound\n\
    \     motivates.\n\n";

  (* without replication the same budget fails on far targets *)
  let params_no_repl =
    {
      Sf_search.Percolation.replication_walk = 0;
      query_walk = root_n;
      broadcast_prob = 0.25;
      max_messages = 4 * root_n;
    }
  in
  let hits = ref 0 in
  for _ = 1 to trials do
    let source = 1 + Sf_prng.Rng.int rng n' in
    let target = 1 + Sf_prng.Rng.int rng n' in
    if source <> target then begin
      let r = Sf_search.Percolation.run rng u params_no_repl ~source ~target in
      if r.Sf_search.Percolation.hit then incr hits
    end
  done;
  Printf.printf
    "control - no replication, sqrt(n)-message budget: hit rate %.2f\n"
    (float_of_int !hits /. float_of_int trials)
