(* The engine of the impossibility proof, run before your eyes.

   Lemma 2 of the paper: conditional on every window vertex attaching
   into the old core (the event E_{a,b}), the window's vertices are
   probabilistically interchangeable - relabelling them does not change
   the distribution of the random tree.  This demo verifies that
   exactly, by enumerating the entire probability space of small Mori
   trees, and then shows Lemma 3's uniform probability bound and the
   Lemma 1 arithmetic that turns both into the Omega(sqrt n) theorem.

   Run with:  dune exec examples/equivalence_demo.exe *)

let () =
  let p = 0.5 in

  Printf.printf "=== Lemma 2, exactly: exhaustive enumeration ===\n\n";
  Printf.printf
    "Mori trees with t = 8 vertices and p = %.1f: all %d outcomes enumerated.\n" p
    (Sf_core.Enumerate.n_outcomes ~t:8);
  List.iter
    (fun (a, b) ->
      let r = Sf_core.Equivalence.exact ~p ~t:8 ~a ~b in
      Printf.printf
        "  window V = [%d,%d]: P(E) = %.4f; %d permutations checked; max distribution\n\
        \    discrepancy %.1e  %s\n"
        (a + 1) b r.Sf_core.Equivalence.event_prob r.Sf_core.Equivalence.permutations_checked
        r.Sf_core.Equivalence.max_discrepancy
        (if r.Sf_core.Equivalence.max_discrepancy < 1e-12 then "(exchangeable: Lemma 2 holds)"
         else "(NOT exchangeable!)");
      ())
    [ (4, 6); (4, 7); (5, 8); (3, 6) ];

  Printf.printf
    "\nWithout the conditioning the same windows are NOT exchangeable - age shows:\n";
  let base = Sf_core.Enumerate.distribution ~p:0.9 ~t:7 () in
  let sigma = Sf_graph.Permute.transposition 7 3 7 in
  let tbl = Hashtbl.create 512 in
  Sf_core.Enumerate.fold ~p:0.9 ~t:7 ~init:() ~f:(fun () ~prob ~fathers ->
      let g = Sf_core.Enumerate.graph_of_fathers fathers in
      let key = Sf_graph.Digraph.canonical_key (Sf_graph.Permute.apply sigma g) in
      Hashtbl.replace tbl key (prob +. Option.value ~default:0. (Hashtbl.find_opt tbl key)));
  let worst = ref 0. in
  List.iter
    (fun (key, prob) ->
      let swapped = Option.value ~default:0. (Hashtbl.find_opt tbl key) in
      worst := Float.max !worst (Float.abs (prob -. swapped)))
    base;
  Printf.printf
    "  swapping vertices 3 and 7 (unconditioned, p = 0.9) shifts some tree's\n\
    \  probability by %.3f - vertex 3 is simply older and richer.\n\n"
    !worst;

  Printf.printf "=== Lemma 3: the conditioning costs only a constant ===\n\n";
  Printf.printf "  P(E_{a,b}) for the canonical window b = a + floor(sqrt(a-1)):\n";
  List.iter
    (fun a ->
      let b = Sf_core.Events.window_end ~a in
      Printf.printf "    a = %-9s P(E) = %.4f   (bound e^{-(1-p)} = %.4f)\n"
        (Sf_stats.Table.fmt_int_grouped a)
        (Sf_core.Events.prob_exact ~p ~a ~b)
        (Sf_core.Events.lemma3_bound ~p))
    [ 10; 1_000; 100_000; 10_000_000 ];

  Printf.printf "\n=== Lemma 1: interchangeability => a lower bound ===\n\n";
  List.iter
    (fun n ->
      let bound = Sf_core.Lower_bound.theorem1 ~p ~m:1 ~n in
      Printf.printf
        "  to find vertex n = %-9s : %4d interchangeable candidates x P(E) %.3f / 2\n\
        \    => every algorithm needs >= %.1f expected requests\n"
        (Sf_stats.Table.fmt_int_grouped n)
        bound.Sf_core.Lower_bound.set_size bound.Sf_core.Lower_bound.event_prob
        bound.Sf_core.Lower_bound.requests)
    [ 10_000; 1_000_000; 100_000_000 ];
  Printf.printf
    "\n  The bound grows as sqrt(n): that is the whole of Theorem 1, with explicit\n\
    \  constants computed by this library rather than hidden in the Omega.\n"
