(* Quickstart: build a scale-free graph, search it under the paper's
   weak local-knowledge model, and compare what you paid with the
   paper's lower bound.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let seed = 42 in
  let rng = Sf_prng.Rng.of_seed seed in

  (* 1. Grow a Mori graph: mixed uniform/preferential attachment with
     p = 0.6, merged in blocks of m = 2, sized so that the newest
     vertices still form the paper's equivalence window. *)
  let p = 0.6 and m = 2 and n = 20_000 in
  let bound = Sf_core.Lower_bound.theorem1 ~p ~m ~n in
  let g = Sf_gen.Mori.graph rng ~p ~m ~n:bound.Sf_core.Lower_bound.graph_size in
  Printf.printf "Mori graph: %s vertices, %s edges (p = %.1f, m = %d)\n"
    (Sf_stats.Table.fmt_int_grouped (Sf_graph.Digraph.n_vertices g))
    (Sf_stats.Table.fmt_int_grouped (Sf_graph.Digraph.n_edges g))
    p m;

  (* 2. It is a small world: the whole graph sits within a few hops. *)
  let u = Sf_graph.Ugraph.of_digraph g in
  let diameter = Sf_graph.Traversal.diameter_double_sweep u rng in
  Printf.printf "diameter ~ %d hops (ln n = %.1f) - a genuine small world\n\n" diameter
    (log (float_of_int n));

  (* 3. Search for the newest vertex with every weak-model strategy,
     starting from the old, well-connected vertex 1. *)
  Printf.printf "searching for vertex %s from vertex 1 (weak model):\n"
    (Sf_stats.Table.fmt_int_grouped n);
  let outcomes =
    List.map
      (fun strategy ->
        let outcome =
          Sf_search.Runner.search ~rng:(Sf_prng.Rng.split rng) u strategy ~source:1 ~target:n
        in
        (outcome.Sf_search.Runner.strategy, outcome.Sf_search.Runner.to_target))
      (Sf_search.Strategies.weak_portfolio ())
  in
  List.iter
    (fun (name, cost) ->
      Printf.printf "  %-16s %s requests\n" name
        (match cost with
        | Some requests -> Sf_stats.Table.fmt_int_grouped requests
        | None -> "gave up / out of budget"))
    outcomes;

  (* 4. The paper's Theorem 1, with the constants filled in: no
     algorithm whatsoever can do better than this on average. *)
  Printf.printf
    "\nTheorem 1 lower bound for this instance: any weak-model searcher needs\n\
     >= %.1f expected requests (window [%d, %d] of %d interchangeable vertices,\n\
     containment event probability %.3f).\n"
    bound.Sf_core.Lower_bound.requests (bound.Sf_core.Lower_bound.a + 1)
    bound.Sf_core.Lower_bound.b bound.Sf_core.Lower_bound.set_size
    bound.Sf_core.Lower_bound.event_prob;
  Printf.printf
    "Asymptotically: Omega(sqrt n) ~ %.0f, despite the %d-hop diameter.\n"
    (Sf_core.Lower_bound.asymptotic_theorem1 ~p ~n)
    diameter
