(* Integration tests: run every experiment of the registry in quick
   mode and assert that all of its shape checks — the paper's
   qualitative claims — pass end to end. *)

let run_experiment (entry : Sf_experiments.Registry.entry) () =
  let result = entry.Sf_experiments.Registry.run ~quick:true ~seed:20070615 in
  Alcotest.(check string) "id matches registry" entry.Sf_experiments.Registry.id
    result.Sf_experiments.Exp.id;
  Alcotest.(check bool) "produces output" true
    (String.length result.Sf_experiments.Exp.output > 0);
  Alcotest.(check bool) "has at least one check" true
    (result.Sf_experiments.Exp.checks <> []);
  match Sf_experiments.Exp.failed_checks result with
  | [] -> ()
  | failed ->
    Alcotest.fail
      (Printf.sprintf "failed shape checks:\n - %s" (String.concat "\n - " failed))

let test_registry_lookup () =
  Alcotest.(check bool) "find T1" true (Sf_experiments.Registry.find "t1" <> None);
  Alcotest.(check bool) "unknown id" true (Sf_experiments.Registry.find "T99" = None);
  Alcotest.(check int) "twenty-three experiments" 23 (List.length (Sf_experiments.Registry.ids ()))

let test_experiment_reproducible () =
  (* same seed, same output text *)
  match Sf_experiments.Registry.find "T5" with
  | None -> Alcotest.fail "T5 missing"
  | Some e ->
    let r1 = e.Sf_experiments.Registry.run ~quick:true ~seed:7 in
    let r2 = e.Sf_experiments.Registry.run ~quick:true ~seed:7 in
    Alcotest.(check string) "identical output" r1.Sf_experiments.Exp.output
      r2.Sf_experiments.Exp.output

let suite =
  ("registry lookup", `Quick, test_registry_lookup)
  :: ("experiment reproducible", `Quick, test_experiment_reproducible)
  :: List.map
       (fun (entry : Sf_experiments.Registry.entry) ->
         ( Printf.sprintf "%s (%s)" entry.Sf_experiments.Registry.id
             entry.Sf_experiments.Registry.title,
           `Slow,
           run_experiment entry ))
       Sf_experiments.Registry.all
