(* Tests for the discrete-event simulator: event-queue ordering, the
   latency models, and the query protocols on graphs with known
   structure. *)

module Rng = Sf_prng.Rng
module Digraph = Sf_graph.Digraph
module Ugraph = Sf_graph.Ugraph
module Event_queue = Sf_sim.Event_queue
module Network = Sf_sim.Network
module Query_sim = Sf_sim.Query_sim

let path_graph n = Digraph.of_edges ~n (List.init (n - 1) (fun i -> (i + 1, i + 2)))
let star_graph n = Digraph.of_edges ~n (List.init (n - 1) (fun i -> (i + 2, 1)))

let net_of ?latency g = Network.create ?latency (Ugraph.of_digraph g)

(* --- Event queue --------------------------------------------------------- *)

let test_event_queue_orders_by_time () =
  let q = Event_queue.create () in
  List.iter (fun (t, v) -> Event_queue.schedule q ~time:t v) [ (3., "c"); (1., "a"); (2., "b") ];
  Alcotest.(check int) "length" 3 (Event_queue.length q);
  Alcotest.(check (option (float 0.))) "peek" (Some 1.) (Event_queue.peek_time q);
  let drain () =
    let rec go acc =
      match Event_queue.next q with Some (_, v) -> go (v :: acc) | None -> List.rev acc
    in
    go []
  in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (drain ())

let test_event_queue_stable_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.schedule q ~time:5. i
  done;
  let rec drain acc =
    match Event_queue.next q with Some (_, v) -> drain (v :: acc) | None -> List.rev acc
  in
  Alcotest.(check (list int)) "insertion order on ties" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (drain [])

let test_event_queue_interleaved () =
  let q = Event_queue.create () in
  Event_queue.schedule q ~time:2. "b";
  Alcotest.(check (option (pair (float 0.) string))) "pop b" (Some (2., "b")) (Event_queue.next q);
  Event_queue.schedule q ~time:1. "a";
  Event_queue.schedule q ~time:3. "c";
  Alcotest.(check (option (pair (float 0.) string))) "pop a" (Some (1., "a")) (Event_queue.next q);
  Alcotest.(check (option (pair (float 0.) string))) "pop c" (Some (3., "c")) (Event_queue.next q);
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_event_queue_rejects_bad_time () =
  let q = Event_queue.create () in
  Alcotest.check_raises "nan time" (Invalid_argument "Event_queue.schedule: bad time")
    (fun () -> Event_queue.schedule q ~time:Float.nan ());
  Alcotest.check_raises "negative time" (Invalid_argument "Event_queue.schedule: bad time")
    (fun () -> Event_queue.schedule q ~time:(-1.) ())

let prop_event_queue_sorts =
  QCheck.Test.make ~name:"event queue pops in non-decreasing time order" ~count:200
    QCheck.(list (float_range 0. 1000.))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.schedule q ~time:t ()) times;
      let rec drain acc =
        match Event_queue.next q with Some (t, ()) -> drain (t :: acc) | None -> acc
      in
      let popped = drain [] in
      (* accumulated in reverse: must be non-increasing *)
      List.length popped = List.length times
      && fst
           (List.fold_left
              (fun (ok, prev) t -> (ok && t <= prev, t))
              (true, infinity) popped))

(* --- Network -------------------------------------------------------------- *)

let test_latency_models () =
  let rng = Rng.of_seed 1 in
  let g = path_graph 2 in
  let const = net_of ~latency:(Network.Constant 2.5) g in
  Alcotest.(check (float 1e-12)) "constant" 2.5 (Network.sample_latency const rng);
  let uni = net_of ~latency:(Network.Uniform (1., 3.)) g in
  for _ = 1 to 200 do
    let l = Network.sample_latency uni rng in
    Alcotest.(check bool) "uniform in range" true (l >= 1. && l < 3.)
  done;
  let expo = net_of ~latency:(Network.Exponential 2.) g in
  for _ = 1 to 200 do
    Alcotest.(check bool) "exponential positive" true (Network.sample_latency expo rng > 0.)
  done

let test_latency_validation () =
  let g = path_graph 2 in
  Alcotest.check_raises "bad constant" (Invalid_argument "Network: constant latency must be positive")
    (fun () -> ignore (net_of ~latency:(Network.Constant 0.) g));
  Alcotest.check_raises "bad uniform" (Invalid_argument "Network: need 0 < lo < hi") (fun () ->
      ignore (net_of ~latency:(Network.Uniform (2., 1.)) g))

(* --- Query simulation -------------------------------------------------------- *)

let test_flood_on_path_exact () =
  (* constant latency 1: the flood front advances one hop per unit, so
     the hit time equals the distance, and messages stay linear *)
  let rng = Rng.of_seed 2 in
  let net = net_of (path_graph 10) in
  let res =
    Query_sim.query ~rng net (Query_sim.Flood { ttl = 20 }) ~source:1
      ~holders:(Query_sim.single_target net 10)
  in
  Alcotest.(check bool) "hit" true res.Query_sim.hit;
  Alcotest.(check (option (float 1e-9))) "time = distance" (Some 9.) res.Query_sim.hit_time;
  Alcotest.(check bool) "messages linear" true (res.Query_sim.messages <= 12);
  Alcotest.(check int) "contacted the whole prefix" 10 res.Query_sim.contacted

let test_flood_ttl_limits_reach () =
  let rng = Rng.of_seed 3 in
  let net = net_of (path_graph 10) in
  let res =
    Query_sim.query ~rng net (Query_sim.Flood { ttl = 3 }) ~source:1
      ~holders:(Query_sim.single_target net 10)
  in
  Alcotest.(check bool) "out of reach" false res.Query_sim.hit;
  Alcotest.(check int) "stopped after ttl hops" 4 res.Query_sim.contacted

let test_flood_star_one_round () =
  let rng = Rng.of_seed 4 in
  let net = net_of (star_graph 30) in
  let res =
    Query_sim.query ~rng net (Query_sim.Flood { ttl = 5 }) ~source:1
      ~holders:(Query_sim.single_target net 17)
  in
  Alcotest.(check bool) "hit" true res.Query_sim.hit;
  Alcotest.(check (option (float 1e-9))) "one hop" (Some 1.) res.Query_sim.hit_time

let test_source_holds_content () =
  let rng = Rng.of_seed 5 in
  let net = net_of (path_graph 5) in
  let res =
    Query_sim.query ~rng net (Query_sim.Flood { ttl = 5 }) ~source:3
      ~holders:(Query_sim.single_target net 3)
  in
  Alcotest.(check bool) "instant hit" true res.Query_sim.hit;
  Alcotest.(check (option (float 1e-9))) "time zero" (Some 0.) res.Query_sim.hit_time;
  Alcotest.(check int) "no messages" 0 res.Query_sim.messages

let test_walker_on_path_progresses () =
  (* on a path a walker is a simple random walk; with enough TTL it
     reaches the end *)
  let rng = Rng.of_seed 6 in
  let net = net_of (path_graph 8) in
  let res =
    Query_sim.query ~rng net
      (Query_sim.K_walkers { k = 1; ttl = 100_000 })
      ~source:1
      ~holders:(Query_sim.single_target net 8)
  in
  Alcotest.(check bool) "walker arrives" true res.Query_sim.hit

let test_k_walkers_send_k_messages_first () =
  let rng = Rng.of_seed 7 in
  let net = net_of (star_graph 50) in
  (* target unreachable by content: count messages of a full run with
     ttl 1: exactly k transmissions *)
  let res =
    Query_sim.query ~rng net
      (Query_sim.K_walkers { k = 7; ttl = 1 })
      ~source:1
      ~holders:(Array.make 50 false)
  in
  Alcotest.(check int) "k messages" 7 res.Query_sim.messages;
  Alcotest.(check bool) "no hit" false res.Query_sim.hit

let test_percolation_q1_equals_flood_reach () =
  let rng = Rng.of_seed 8 in
  let net = net_of (path_graph 10) in
  let res =
    Query_sim.query ~rng net
      (Query_sim.Percolation { q = 1.; ttl = 20 })
      ~source:1
      ~holders:(Query_sim.single_target net 10)
  in
  Alcotest.(check bool) "q=1 reaches like flood" true res.Query_sim.hit;
  let res0 =
    Query_sim.query ~rng net
      (Query_sim.Percolation { q = 0.; ttl = 20 })
      ~source:1
      ~holders:(Query_sim.single_target net 10)
  in
  Alcotest.(check bool) "q=0 goes nowhere" false res0.Query_sim.hit;
  Alcotest.(check int) "q=0 sends nothing" 0 res0.Query_sim.messages

let test_max_messages_cap () =
  let rng = Rng.of_seed 9 in
  let g = Sf_gen.Erdos_renyi.gnm rng ~n:100 ~m:400 in
  let net = net_of g in
  let res =
    Query_sim.query ~max_messages:50 ~rng net (Query_sim.Flood { ttl = 50 }) ~source:1
      ~holders:(Array.make 100 false)
  in
  Alcotest.(check bool) "cap respected" true (res.Query_sim.messages <= 50)

let test_query_validation () =
  let rng = Rng.of_seed 10 in
  let net = net_of (path_graph 3) in
  Alcotest.check_raises "bad q" (Invalid_argument "Query_sim: q outside [0, 1]") (fun () ->
      ignore
        (Query_sim.query ~rng net (Query_sim.Percolation { q = 2.; ttl = 1 }) ~source:1
           ~holders:(Array.make 3 false)));
  Alcotest.check_raises "bad k" (Invalid_argument "Query_sim: need k >= 1") (fun () ->
      ignore
        (Query_sim.query ~rng net (Query_sim.K_walkers { k = 0; ttl = 1 }) ~source:1
           ~holders:(Array.make 3 false)));
  Alcotest.check_raises "holder size" (Invalid_argument "Query_sim.query: holder array size mismatch")
    (fun () ->
      ignore
        (Query_sim.query ~rng net (Query_sim.Flood { ttl = 1 }) ~source:1
           ~holders:(Array.make 5 false)))

let test_simulation_deterministic () =
  let run () =
    let rng = Rng.of_seed 11 in
    let g = Sf_gen.Config_model.searchable_power_law rng ~n:500 ~exponent:2.4 () in
    let net = net_of ~latency:(Network.Uniform (0.5, 1.5)) g in
    Query_sim.query ~rng net
      (Query_sim.K_walkers { k = 4; ttl = 2000 })
      ~source:1
      ~holders:(Query_sim.single_target net (Network.n_nodes net / 2))
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check int) "same messages" r1.Query_sim.messages r2.Query_sim.messages;
  Alcotest.(check (option (float 1e-12))) "same hit time" r1.Query_sim.hit_time
    r2.Query_sim.hit_time

(* --- Churn ------------------------------------------------------------------ *)

module Churn_sim = Sf_sim.Churn_sim

let test_uptime_formula () =
  Alcotest.(check (float 1e-9)) "uptime 0.75"
    0.75
    (Churn_sim.uptime { Churn_sim.mean_up = 30.; mean_down = 10. })

let test_churn_everything_dead_fails () =
  (* vanishing uptime: the first hop almost surely dies *)
  let rng = Rng.of_seed 20 in
  let net = net_of (star_graph 40) in
  let churn = { Churn_sim.mean_up = 0.001; mean_down = 1000. } in
  let misses = ref 0 in
  for _ = 1 to 20 do
    let res =
      Churn_sim.query ~rng net churn
        (Sf_sim.Query_sim.Flood { ttl = 3 })
        ~source:1
        ~holders:(Sf_sim.Query_sim.single_target net 7)
    in
    if not res.Churn_sim.hit then incr misses
  done;
  Alcotest.(check bool) "almost always fails" true (!misses >= 18)

let test_churn_high_uptime_succeeds () =
  let rng = Rng.of_seed 21 in
  let net = net_of (star_graph 40) in
  let churn = { Churn_sim.mean_up = 10_000.; mean_down = 0.001 } in
  let res =
    Churn_sim.query ~rng net churn
      (Sf_sim.Query_sim.Flood { ttl = 3 })
      ~source:1
      ~holders:(Sf_sim.Query_sim.single_target net 7)
  in
  Alcotest.(check bool) "succeeds when nearly everyone is up" true res.Churn_sim.hit

let test_churn_counts_drops () =
  let rng = Rng.of_seed 22 in
  let net = net_of (star_graph 100) in
  let churn = { Churn_sim.mean_up = 10.; mean_down = 10. } in
  let res =
    Churn_sim.query ~rng net churn
      (Sf_sim.Query_sim.Flood { ttl = 2 })
      ~source:1
      ~holders:(Array.make 100 false)
  in
  (* with 50% uptime, a fair share of the 99 spokes are dropped *)
  Alcotest.(check bool)
    (Printf.sprintf "drops recorded (%d)" res.Churn_sim.dropped)
    true
    (res.Churn_sim.dropped > 20);
  Alcotest.check_raises "bad churn" (Invalid_argument "Churn_sim.query: churn means must be positive")
    (fun () ->
      ignore
        (Churn_sim.query ~rng net { Churn_sim.mean_up = 0.; mean_down = 1. }
           (Sf_sim.Query_sim.Flood { ttl = 1 }) ~source:1 ~holders:(Array.make 100 false)))

let suite =
  [
    ("event queue order", `Quick, test_event_queue_orders_by_time);
    ("event queue stable ties", `Quick, test_event_queue_stable_ties);
    ("event queue interleaved", `Quick, test_event_queue_interleaved);
    ("event queue bad time", `Quick, test_event_queue_rejects_bad_time);
    ("latency models", `Quick, test_latency_models);
    ("latency validation", `Quick, test_latency_validation);
    ("flood exact on path", `Quick, test_flood_on_path_exact);
    ("flood ttl", `Quick, test_flood_ttl_limits_reach);
    ("flood star", `Quick, test_flood_star_one_round);
    ("source holds content", `Quick, test_source_holds_content);
    ("walker on path", `Quick, test_walker_on_path_progresses);
    ("k walkers message count", `Quick, test_k_walkers_send_k_messages_first);
    ("percolation extremes", `Quick, test_percolation_q1_equals_flood_reach);
    ("max messages cap", `Quick, test_max_messages_cap);
    ("query validation", `Quick, test_query_validation);
    ("simulation deterministic", `Quick, test_simulation_deterministic);
    ("churn uptime formula", `Quick, test_uptime_formula);
    ("churn kills at low uptime", `Quick, test_churn_everything_dead_fails);
    ("churn harmless at high uptime", `Quick, test_churn_high_uptime_succeeds);
    ("churn counts drops", `Quick, test_churn_counts_drops);
    QCheck_alcotest.to_alcotest prop_event_queue_sorts;
  ]
