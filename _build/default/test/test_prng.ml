(* Tests for the sf_prng substrate: generator determinism and stream
   splitting, then statistical sanity of every sampler. *)

module Rng = Sf_prng.Rng
module Dist = Sf_prng.Dist
module Discrete = Sf_prng.Discrete
module Shuffle = Sf_prng.Shuffle

let check_close ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* --- Rng ------------------------------------------------------------ *)

let test_determinism () =
  let a = Rng.of_seed 1234 and b = Rng.of_seed 1234 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.of_seed 1 and b = Rng.of_seed 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 3)

let test_copy_independent () =
  let a = Rng.of_seed 7 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b);
  ignore (Rng.int64 a);
  (* advancing a further must not affect b *)
  let a' = Rng.int64 a and b' = Rng.int64 b in
  Alcotest.(check bool) "streams decoupled after copy" true (a' <> b')

let test_split_independence () =
  let parent = Rng.of_seed 99 in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 child1 = Rng.int64 child2 then incr matches
  done;
  Alcotest.(check bool) "split children differ" true (!matches < 3)

let test_split_at_pure () =
  let parent = Rng.of_seed 5 in
  let fp_before = Rng.state_fingerprint parent in
  let c1 = Rng.split_at parent 3 in
  let fp_after = Rng.state_fingerprint parent in
  Alcotest.(check int64) "split_at leaves parent untouched" fp_before fp_after;
  let c1' = Rng.split_at parent 3 in
  Alcotest.(check int64) "split_at is deterministic" (Rng.int64 c1) (Rng.int64 c1');
  let c2 = Rng.split_at parent 4 in
  Alcotest.(check bool) "distinct indices give distinct streams" true
    (Rng.int64 (Rng.copy c2) <> Rng.int64 (Rng.split_at parent 3))

let test_int_bounds () =
  let rng = Rng.of_seed 11 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "zero bound rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_uniformity () =
  let rng = Rng.of_seed 12 in
  let counts = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Rng.int rng 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let dev = Float.abs (float_of_int c -. 10_000.) in
      Alcotest.(check bool) (Printf.sprintf "bucket %d near uniform" i) true (dev < 500.))
    counts

let test_int_in_range () =
  let rng = Rng.of_seed 13 in
  for _ = 1 to 500 do
    let v = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done;
  Alcotest.(check int) "degenerate range" 3 (Rng.int_in_range rng ~lo:3 ~hi:3)

let test_unit_float () =
  let rng = Rng.of_seed 14 in
  let sum = ref 0. in
  for _ = 1 to 10_000 do
    let u = Rng.unit_float rng in
    Alcotest.(check bool) "in [0,1)" true (u >= 0. && u < 1.);
    sum := !sum +. u
  done;
  Alcotest.(check bool) "mean near 1/2" true (Float.abs ((!sum /. 10_000.) -. 0.5) < 0.02)

let test_bernoulli () =
  let rng = Rng.of_seed 15 in
  let hits = ref 0 in
  for _ = 1 to 20_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  Alcotest.(check bool) "p=0.3 frequency" true
    (Float.abs ((float_of_int !hits /. 20_000.) -. 0.3) < 0.02);
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.)

let test_jump_changes_state () =
  let rng = Rng.of_seed 16 in
  let before = Rng.state_fingerprint rng in
  Rng.jump rng;
  Alcotest.(check bool) "jump moves the state" true (before <> Rng.state_fingerprint rng)

(* --- Dist ----------------------------------------------------------- *)

let sample_mean n f =
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. f ()
  done;
  !acc /. float_of_int n

let test_exponential_mean () =
  let rng = Rng.of_seed 20 in
  let mean = sample_mean 40_000 (fun () -> Dist.exponential rng ~rate:2.) in
  Alcotest.(check bool) "mean 1/rate" true (Float.abs (mean -. 0.5) < 0.02)

let test_geometric_mean () =
  let rng = Rng.of_seed 21 in
  let p = 0.25 in
  let mean = sample_mean 40_000 (fun () -> float_of_int (Dist.geometric rng ~p)) in
  (* failures before success: mean (1-p)/p = 3 *)
  Alcotest.(check bool) "geometric mean" true (Float.abs (mean -. 3.) < 0.1);
  Alcotest.(check int) "p=1 always zero" 0 (Dist.geometric rng ~p:1.)

let test_binomial_moments () =
  let rng = Rng.of_seed 22 in
  let mean = sample_mean 20_000 (fun () -> float_of_int (Dist.binomial rng ~n:40 ~p:0.3)) in
  Alcotest.(check bool) "binomial mean np" true (Float.abs (mean -. 12.) < 0.25);
  (* the sparse path *)
  let mean2 = sample_mean 20_000 (fun () -> float_of_int (Dist.binomial rng ~n:1000 ~p:0.004)) in
  Alcotest.(check bool) "sparse binomial mean" true (Float.abs (mean2 -. 4.) < 0.15);
  Alcotest.(check int) "p=0" 0 (Dist.binomial rng ~n:10 ~p:0.);
  Alcotest.(check int) "p=1" 10 (Dist.binomial rng ~n:10 ~p:1.)

let test_poisson_mean () =
  let rng = Rng.of_seed 23 in
  let mean = sample_mean 20_000 (fun () -> float_of_int (Dist.poisson rng ~mean:7.5)) in
  Alcotest.(check bool) "poisson mean" true (Float.abs (mean -. 7.5) < 0.15)

let test_normal_moments () =
  let rng = Rng.of_seed 24 in
  let n = 40_000 in
  let xs = Array.init n (fun _ -> Dist.normal rng ~mu:3. ~sigma:2.) in
  let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. float_of_int n
  in
  Alcotest.(check bool) "normal mean" true (Float.abs (mean -. 3.) < 0.05);
  Alcotest.(check bool) "normal variance" true (Float.abs (var -. 4.) < 0.15)

let test_pareto_support () =
  let rng = Rng.of_seed 25 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "pareto >= x_min" true (Dist.pareto rng ~alpha:2. ~x_min:1.5 >= 1.5)
  done

let test_zeta_tail () =
  let rng = Rng.of_seed 26 in
  (* P(X = 1) = 1/zeta(2) = 6/pi^2 ~ 0.6079 for alpha = 2 *)
  let n = 40_000 in
  let ones = ref 0 in
  for _ = 1 to n do
    let v = Dist.zeta rng ~alpha:2. in
    Alcotest.(check bool) "zeta >= 1" true (v >= 1);
    if v = 1 then incr ones
  done;
  let p1 = float_of_int !ones /. float_of_int n in
  Alcotest.(check bool) "zeta P(1)" true (Float.abs (p1 -. 0.6079) < 0.02)

let test_zipf_bounded () =
  let rng = Rng.of_seed 27 in
  for _ = 1 to 2000 do
    let v = Dist.zipf_bounded rng ~alpha:2.5 ~n:50 in
    Alcotest.(check bool) "zipf in [1,n]" true (v >= 1 && v <= 50)
  done;
  (* alpha <= 1 path (CDF inversion) *)
  for _ = 1 to 500 do
    let v = Dist.zipf_bounded rng ~alpha:0.8 ~n:30 in
    Alcotest.(check bool) "zipf alpha<=1 in range" true (v >= 1 && v <= 30)
  done

let test_power_law_sequence () =
  let rng = Rng.of_seed 28 in
  let seq = Dist.discrete_power_law_sequence rng ~exponent:2.5 ~d_min:2 ~d_max:100 ~n:5000 in
  Alcotest.(check int) "length" 5000 (Array.length seq);
  Array.iter (fun d -> Alcotest.(check bool) "in support" true (d >= 2 && d <= 100)) seq;
  (* ratio P(2)/P(4) should be near 2^2.5 *)
  let c2 = Array.fold_left (fun acc d -> if d = 2 then acc + 1 else acc) 0 seq in
  let c4 = Array.fold_left (fun acc d -> if d = 4 then acc + 1 else acc) 0 seq in
  let ratio = float_of_int c2 /. float_of_int (max c4 1) in
  Alcotest.(check bool) "power-law ratio" true (ratio > 3.5 && ratio < 8.5)

(* --- Discrete -------------------------------------------------------- *)

let test_alias_frequencies () =
  let rng = Rng.of_seed 30 in
  let sampler = Discrete.Alias.create [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check int) "size" 4 (Discrete.Alias.size sampler);
  let counts = Array.make 4 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Discrete.Alias.sample sampler rng in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = float_of_int (i + 1) /. 10. *. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "alias weight %d" i)
        true
        (Float.abs (float_of_int c -. expected) /. expected < 0.05))
    counts

let test_alias_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Alias.create: empty weights") (fun () ->
      ignore (Discrete.Alias.create [||]));
  Alcotest.check_raises "negative" (Invalid_argument "Alias.create: negative weight")
    (fun () -> ignore (Discrete.Alias.create [| 1.; -1. |]));
  Alcotest.check_raises "zero total" (Invalid_argument "Alias.create: zero total weight")
    (fun () -> ignore (Discrete.Alias.create [| 0.; 0. |]))

let test_fenwick_ops () =
  let t = Discrete.Fenwick.of_array [| 1.; 2.; 3. |] in
  Alcotest.(check int) "length" 3 (Discrete.Fenwick.length t);
  check_close "total" 6. (Discrete.Fenwick.total t);
  check_close "get 1" 2. (Discrete.Fenwick.get t 1);
  Discrete.Fenwick.add t 1 4.;
  check_close "after add" 6. (Discrete.Fenwick.get t 1);
  check_close "total after add" 10. (Discrete.Fenwick.total t);
  let i = Discrete.Fenwick.push t 5. in
  Alcotest.(check int) "push index" 3 i;
  check_close "pushed weight" 5. (Discrete.Fenwick.get t 3)

let test_fenwick_sampling () =
  let rng = Rng.of_seed 31 in
  let t = Discrete.Fenwick.of_array [| 0.; 5.; 0.; 15. |] in
  let counts = Array.make 4 0 in
  for _ = 1 to 20_000 do
    let i = Discrete.Fenwick.sample t rng in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight slot never drawn (0)" 0 counts.(0);
  Alcotest.(check int) "zero-weight slot never drawn (2)" 0 counts.(2);
  let frac = float_of_int counts.(3) /. 20_000. in
  Alcotest.(check bool) "weights respected" true (Float.abs (frac -. 0.75) < 0.02)

let test_fenwick_dynamic_growth () =
  let rng = Rng.of_seed 32 in
  let t = Discrete.Fenwick.create ~capacity:1 () in
  for i = 0 to 99 do
    ignore (Discrete.Fenwick.push t (float_of_int (i + 1)))
  done;
  Alcotest.(check int) "grew" 100 (Discrete.Fenwick.length t);
  check_close "total 5050" 5050. (Discrete.Fenwick.total t);
  for _ = 1 to 100 do
    let i = Discrete.Fenwick.sample t rng in
    Alcotest.(check bool) "sampled in range" true (i >= 0 && i < 100)
  done

(* --- Shuffle --------------------------------------------------------- *)

let test_permutation_valid () =
  let rng = Rng.of_seed 40 in
  let p = Shuffle.permutation rng 50 in
  let seen = Array.make 50 false in
  Array.iter (fun v -> seen.(v) <- true) p;
  Alcotest.(check bool) "bijection" true (Array.for_all Fun.id seen)

let test_shuffle_uniformity () =
  let rng = Rng.of_seed 41 in
  (* all 6 permutations of 3 elements should be near 1/6 *)
  let counts = Hashtbl.create 6 in
  let n = 30_000 in
  for _ = 1 to n do
    let p = Shuffle.permutation rng 3 in
    let key = Printf.sprintf "%d%d%d" p.(0) p.(1) p.(2) in
    Hashtbl.replace counts key (1 + try Hashtbl.find counts key with Not_found -> 0)
  done;
  Alcotest.(check int) "six permutations seen" 6 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      Alcotest.(check bool) "near uniform" true
        (Float.abs (float_of_int c -. 5000.) < 400.))
    counts

let test_sample_without_replacement () =
  let rng = Rng.of_seed 42 in
  for _ = 1 to 200 do
    let s = Shuffle.sample_without_replacement rng ~k:10 ~n:30 in
    Alcotest.(check int) "k items" 10 (Array.length s);
    let sorted = Array.copy s in
    Array.sort compare sorted;
    for i = 1 to 9 do
      Alcotest.(check bool) "distinct" true (sorted.(i) <> sorted.(i - 1))
    done;
    Array.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 30)) s
  done;
  Alcotest.(check int) "k = n" 5 (Array.length (Shuffle.sample_without_replacement rng ~k:5 ~n:5))

let test_reservoir () =
  let rng = Rng.of_seed 43 in
  let sample = Shuffle.reservoir rng ~k:5 (Seq.init 100 Fun.id) in
  Alcotest.(check int) "k items" 5 (Array.length sample);
  let short = Shuffle.reservoir rng ~k:10 (Seq.init 3 Fun.id) in
  Alcotest.(check int) "short input" 3 (Array.length short)

let test_reservoir_uniform () =
  let rng = Rng.of_seed 44 in
  let hits = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let s = Shuffle.reservoir rng ~k:1 (Seq.init 10 Fun.id) in
    hits.(s.(0)) <- hits.(s.(0)) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "element %d near 1/10" i)
        true
        (Float.abs (float_of_int c -. 2000.) < 250.))
    hits

(* --- qcheck properties ----------------------------------------------- *)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int always within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.of_seed seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_permutation_bijective =
  QCheck.Test.make ~name:"Shuffle.permutation is bijective" ~count:200
    QCheck.(pair small_int (int_range 1 200))
    (fun (seed, n) ->
      let p = Shuffle.permutation (Rng.of_seed seed) n in
      let seen = Array.make n false in
      Array.iter (fun v -> seen.(v) <- true) p;
      Array.for_all Fun.id seen)

let prop_fenwick_matches_reference =
  QCheck.Test.make ~name:"Fenwick get/total match reference" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range 0. 10.))
    (fun weights ->
      let arr = Array.of_list weights in
      let t = Discrete.Fenwick.of_array arr in
      let total_ref = Array.fold_left ( +. ) 0. arr in
      Float.abs (Discrete.Fenwick.total t -. total_ref) < 1e-9
      && Array.for_all
           (fun i -> Float.abs (Discrete.Fenwick.get t i -. arr.(i)) < 1e-9)
           (Array.init (Array.length arr) Fun.id))

let suite =
  [
    ("determinism", `Quick, test_determinism);
    ("seed sensitivity", `Quick, test_seed_sensitivity);
    ("copy independence", `Quick, test_copy_independent);
    ("split independence", `Quick, test_split_independence);
    ("split_at purity", `Quick, test_split_at_pure);
    ("int bounds", `Quick, test_int_bounds);
    ("int uniformity", `Quick, test_int_uniformity);
    ("int_in_range", `Quick, test_int_in_range);
    ("unit_float", `Quick, test_unit_float);
    ("bernoulli", `Quick, test_bernoulli);
    ("jump", `Quick, test_jump_changes_state);
    ("exponential mean", `Quick, test_exponential_mean);
    ("geometric mean", `Quick, test_geometric_mean);
    ("binomial moments", `Quick, test_binomial_moments);
    ("poisson mean", `Quick, test_poisson_mean);
    ("normal moments", `Quick, test_normal_moments);
    ("pareto support", `Quick, test_pareto_support);
    ("zeta tail", `Quick, test_zeta_tail);
    ("zipf bounded", `Quick, test_zipf_bounded);
    ("power-law sequence", `Quick, test_power_law_sequence);
    ("alias frequencies", `Quick, test_alias_frequencies);
    ("alias validation", `Quick, test_alias_validation);
    ("fenwick ops", `Quick, test_fenwick_ops);
    ("fenwick sampling", `Quick, test_fenwick_sampling);
    ("fenwick growth", `Quick, test_fenwick_dynamic_growth);
    ("permutation valid", `Quick, test_permutation_valid);
    ("shuffle uniformity", `Quick, test_shuffle_uniformity);
    ("sample without replacement", `Quick, test_sample_without_replacement);
    ("reservoir size", `Quick, test_reservoir);
    ("reservoir uniform", `Quick, test_reservoir_uniform);
    QCheck_alcotest.to_alcotest prop_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_permutation_bijective;
    QCheck_alcotest.to_alcotest prop_fenwick_matches_reference;
  ]
