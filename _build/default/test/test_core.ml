(* Tests for sf_core: the mechanised mathematics of the paper —
   enumeration ground truth, the exact event probability (Lemma 3),
   exact and statistical vertex equivalence (Lemma 2), the Lemma 1 /
   Theorem 1 bound assembly, the max-degree law and the measurement
   harness. *)

module Rng = Sf_prng.Rng
module Digraph = Sf_graph.Digraph
module Events = Sf_core.Events
module Enumerate = Sf_core.Enumerate
module Equivalence = Sf_core.Equivalence
module Lower_bound = Sf_core.Lower_bound
module Max_degree = Sf_core.Max_degree
module Searchability = Sf_core.Searchability

let checkf ?(eps = 1e-9) name expected actual = Alcotest.(check (float eps)) name expected actual

(* --- Enumerate -------------------------------------------------------------- *)

let test_enumeration_counts () =
  Alcotest.(check int) "t=2 single outcome" 1 (Enumerate.n_outcomes ~t:2);
  Alcotest.(check int) "t=5: 2*3*4" 24 (Enumerate.n_outcomes ~t:5);
  let visits = Enumerate.fold ~p:0.5 ~t:5 ~init:0 ~f:(fun acc ~prob:_ ~fathers:_ -> acc + 1) in
  Alcotest.(check int) "fold visits all outcomes" 24 visits

let test_enumeration_probabilities_sum_to_one () =
  List.iter
    (fun (p, t) ->
      let total = Enumerate.fold ~p ~t ~init:0. ~f:(fun acc ~prob ~fathers:_ -> acc +. prob) in
      checkf ~eps:1e-12 (Printf.sprintf "sum=1 at p=%.2f t=%d" p t) 1. total)
    [ (0.3, 6); (0.5, 7); (1.0, 6); (0.05, 5) ]

let test_enumeration_guards () =
  Alcotest.check_raises "t too large" (Invalid_argument "Enumerate.fold: need 2 <= t <= 12")
    (fun () -> ignore (Enumerate.fold ~p:0.5 ~t:13 ~init:() ~f:(fun () ~prob:_ ~fathers:_ -> ())))

let test_graph_of_fathers () =
  let g = Enumerate.graph_of_fathers [| 1; 2; 2 |] in
  Alcotest.(check int) "vertices" 4 (Digraph.n_vertices g);
  Alcotest.(check int) "father of 3" 2 (Sf_gen.Mori.father g 3);
  Alcotest.(check int) "father of 4" 2 (Sf_gen.Mori.father g 4)

let test_distribution_is_normalised () =
  let dist = Enumerate.distribution ~p:0.4 ~t:6 () in
  let total = List.fold_left (fun acc (_, pr) -> acc +. pr) 0. dist in
  checkf ~eps:1e-12 "normalised" 1. total;
  (* keys are distinct *)
  let keys = List.map fst dist in
  Alcotest.(check int) "distinct keys" (List.length keys) (List.length (List.sort_uniq compare keys))

let test_empirical_matches_enumeration () =
  (* the generator and the enumerator must define the same measure:
     compare P(father of 4 = 1) at p = 0.7 *)
  let p = 0.7 and t = 4 in
  let exact =
    Enumerate.event_prob ~p ~t ~condition:(fun g -> Sf_gen.Mori.father g 4 = 1)
  in
  let rng = Rng.of_seed 1 in
  let trials = 60_000 in
  let hits = ref 0 in
  for _ = 1 to trials do
    if Sf_gen.Mori.father (Sf_gen.Mori.tree rng ~p ~t) 4 = 1 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "generator matches enumerator (%.4f vs %.4f)" freq exact)
    true
    (Float.abs (freq -. exact) < 0.01)

(* --- Events ------------------------------------------------------------------ *)

let test_window_end () =
  Alcotest.(check int) "a=2" 3 (Events.window_end ~a:2);
  Alcotest.(check int) "a=101" 111 (Events.window_end ~a:101);
  Alcotest.(check int) "a=10001" 10101 (Events.window_end ~a:10001)

let test_prob_exact_trivial_window () =
  checkf "empty window" 1. (Events.prob_exact ~p:0.5 ~a:5 ~b:5)

let test_prob_exact_vs_enumeration () =
  List.iter
    (fun (p, a, b, t) ->
      let exact = Events.prob_exact ~p ~a ~b in
      let enum = Enumerate.event_prob ~p ~t ~condition:(fun g -> Events.holds g ~a ~b) in
      checkf ~eps:1e-10 (Printf.sprintf "p=%.2f a=%d b=%d" p a b) enum exact)
    [ (0.5, 3, 5, 6); (0.8, 4, 6, 7); (0.2, 2, 4, 5); (1.0, 3, 6, 7); (0.6, 5, 7, 8) ]

let test_prob_exact_independent_of_t () =
  (* the product only involves steps in (a, b]; enumeration at two
     different final sizes must agree *)
  let p = 0.5 and a = 3 and b = 5 in
  let at_t t = Enumerate.event_prob ~p ~t ~condition:(fun g -> Events.holds g ~a ~b) in
  checkf ~eps:1e-10 "t-independence" (at_t 6) (at_t 8)

let test_lemma3_bound_holds () =
  (* exact probability of the canonical window is at least e^{-(1-p)}
     across the parameter grid *)
  List.iter
    (fun p ->
      List.iter
        (fun a ->
          let b = Events.window_end ~a in
          let exact = Events.prob_exact ~p ~a ~b in
          let bound = Events.lemma3_bound ~p in
          Alcotest.(check bool)
            (Printf.sprintf "P >= bound at p=%.2f a=%d (%.4f >= %.4f)" p a exact bound)
            true (exact >= bound -. 1e-12))
        [ 2; 3; 10; 100; 1000; 100_000; 1_000_000 ])
    [ 0.05; 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ]

let test_lemma3_bound_asymptotically_tight_direction () =
  (* as a grows the probability decreases toward its limit but must
     stay above the bound; check monotone-ish behaviour coarsely *)
  let p = 0.3 in
  let prob a = Events.prob_exact ~p ~a ~b:(Events.window_end ~a) in
  Alcotest.(check bool) "large-a window probability below small-a" true (prob 1_000_00 <= prob 10 +. 1e-9)

let test_monte_carlo_agrees_with_exact () =
  let rng = Rng.of_seed 2 in
  let p = 0.5 and a = 50 in
  let b = Events.window_end ~a in
  let exact = Events.prob_exact ~p ~a ~b in
  let est, se = Events.prob_monte_carlo rng ~p ~a ~b ~trials:4000 in
  Alcotest.(check bool)
    (Printf.sprintf "MC %.4f within 4se of exact %.4f" est exact)
    true
    (Float.abs (est -. exact) < (4. *. se) +. 1e-6)

let test_holds_checker () =
  (* hand-built tree: 1<-2, 2<-3, 2<-4, 4<-5 *)
  let g = Enumerate.graph_of_fathers [| 1; 2; 2; 4 |] in
  Alcotest.(check bool) "E_{2,4}: fathers of 3,4 are <= 2" true (Events.holds g ~a:2 ~b:4);
  Alcotest.(check bool) "E_{3,5} fails: father of 5 is 4 > 3" false (Events.holds g ~a:3 ~b:5);
  Alcotest.(check bool) "E_{4,5} holds" true (Events.holds g ~a:4 ~b:5)

let test_conditioned_sampler_matches_event_prob () =
  (* conditional sampler + exact probability reproduce unconditional
     frequencies: P(E and father of b = 1) = P(E) * P(father = 1 | E) *)
  let rng = Rng.of_seed 3 in
  let p = 0.7 and a = 30 in
  let b = Events.window_end ~a in
  let trials = 3000 in
  let hits = ref 0 in
  for _ = 1 to trials do
    let g = Sf_gen.Mori.tree_conditioned rng ~p ~t:b ~a ~b in
    if Sf_gen.Mori.father g b <= a then incr hits
  done;
  Alcotest.(check int) "conditioned sampler always satisfies E" trials !hits

(* --- Equivalence --------------------------------------------------------------- *)

let test_exact_equivalence_lemma2 () =
  (* the heart of the paper: conditional on E_{a,b}, window vertices
     are exchangeable — exactly, over the whole probability space *)
  List.iter
    (fun (p, t, a, b) ->
      let r = Equivalence.exact ~p ~t ~a ~b in
      Alcotest.(check bool)
        (Printf.sprintf "lemma2 exact at p=%.2f t=%d [%d,%d] (disc=%.2e)" p t a b
           r.Equivalence.max_discrepancy)
        true
        (r.Equivalence.max_discrepancy < 1e-12);
      Alcotest.(check bool) "event has positive probability" true (r.Equivalence.event_prob > 0.))
    [ (0.5, 7, 3, 6); (0.8, 8, 4, 7); (0.3, 7, 4, 6); (1.0, 8, 3, 6); (0.6, 9, 5, 8) ]

let test_exact_equivalence_fails_without_conditioning () =
  (* sanity: the unconditioned distribution is NOT exchangeable over a
     wide window — verify our checker has teeth by comparing the
     unconditioned law directly *)
  let p = 0.8 and t = 7 in
  let base = Enumerate.distribution ~p ~t () in
  let sigma = Sf_graph.Permute.transposition t 2 6 in
  let pushed =
    List.map
      (fun (key, _) -> key)
      base
    |> List.length
  in
  ignore pushed;
  (* compute max discrepancy by pushing each outcome through sigma *)
  let tbl = Hashtbl.create 512 in
  Enumerate.fold ~p ~t ~init:() ~f:(fun () ~prob ~fathers ->
      let g = Enumerate.graph_of_fathers fathers in
      let key = Digraph.canonical_key (Sf_graph.Permute.apply sigma g) in
      let prev = try Hashtbl.find tbl key with Not_found -> 0. in
      Hashtbl.replace tbl key (prev +. prob));
  let worst = ref 0. in
  List.iter
    (fun (key, prob) ->
      let pushed_prob = try Hashtbl.find tbl key with Not_found -> 0. in
      worst := Float.max !worst (Float.abs (prob -. pushed_prob)))
    base;
  Alcotest.(check bool)
    (Printf.sprintf "unconditioned asymmetric (disc=%.3f)" !worst)
    true (!worst > 0.01)

let test_window_statistic_is_sigma_covariant () =
  let rng = Rng.of_seed 4 in
  let a = 10 and b = 14 and t = 20 in
  let g = Sf_gen.Mori.tree_conditioned rng ~p:0.5 ~t ~a ~b in
  let stat = Equivalence.window_statistic g ~a ~b in
  Alcotest.(check bool) "statistic non-empty" true (String.length stat > 0);
  (* identity permutation leaves the statistic unchanged *)
  let id = Sf_graph.Permute.identity t in
  Alcotest.(check string) "identity invariant" stat
    (Equivalence.window_statistic (Sf_graph.Permute.apply id g) ~a ~b)

let test_monte_carlo_equivalence_not_rejected () =
  let rng = Rng.of_seed 5 in
  let a = 40 in
  let t_and_b = Events.window_end ~a in
  let sigma = Equivalence.random_window_sigma rng ~t:t_and_b ~a ~b:t_and_b in
  let r =
    Equivalence.monte_carlo rng ~p:0.5 ~t:t_and_b ~a ~b:t_and_b ~trials:2000 ~sigma
      ~conditioned:true
  in
  Alcotest.(check bool)
    (Printf.sprintf "conditioned: p-value %.4f not tiny" r.Equivalence.p_value)
    true
    (r.Equivalence.p_value > 0.001)

let test_monte_carlo_detects_inequivalence () =
  (* negative control: an old, unconditioned window mixes vertices
     whose indegree laws differ a lot (vertex 3 is much older than
     vertex 7 by relative age); the test must reject *)
  let rng = Rng.of_seed 6 in
  let t = 60 in
  let a = 2 and b = 7 in
  let sigma = Sf_graph.Permute.transposition t 3 7 in
  let r =
    Equivalence.monte_carlo rng ~p:0.9 ~t ~a ~b ~trials:1500 ~sigma ~conditioned:false
  in
  Alcotest.(check bool)
    (Printf.sprintf "unconditioned wide window rejected (p=%.2e)" r.Equivalence.p_value)
    true
    (r.Equivalence.p_value < 1e-4)

let test_monte_carlo_guards () =
  let rng = Rng.of_seed 7 in
  let sigma = Sf_graph.Permute.transposition 10 1 2 in
  Alcotest.check_raises "sigma outside window"
    (Invalid_argument "Equivalence.monte_carlo: sigma moves vertices outside the window")
    (fun () ->
      ignore (Equivalence.monte_carlo rng ~p:0.5 ~t:10 ~a:5 ~b:8 ~trials:10 ~sigma ~conditioned:true))

(* --- Rational arithmetic ---------------------------------------------------------- *)

module Rational = Sf_core.Rational

let test_rational_basics () =
  let half = Rational.make 1L 2L in
  let third = Rational.make 2L 6L in
  Alcotest.(check string) "normalised" "1/3" (Rational.to_string third);
  Alcotest.(check string) "sum" "5/6" (Rational.to_string (Rational.add half third));
  Alcotest.(check string) "product" "1/6" (Rational.to_string (Rational.mul half third));
  Alcotest.(check string) "difference" "1/6" (Rational.to_string (Rational.sub half third));
  Alcotest.(check string) "quotient" "3/2" (Rational.to_string (Rational.div half third));
  Alcotest.(check bool) "equality after normalisation" true
    (Rational.equal (Rational.make 3L 9L) third);
  Alcotest.(check int) "compare" (-1) (Rational.compare third half);
  Alcotest.(check string) "negative denominator normalised" "-1/2"
    (Rational.to_string (Rational.make 1L (-2L)));
  Alcotest.(check (float 1e-12)) "to_float" 0.5 (Rational.to_float half)

let test_rational_guards () =
  Alcotest.check_raises "zero denominator" (Invalid_argument "Rational: zero denominator")
    (fun () -> ignore (Rational.make 1L 0L));
  Alcotest.check_raises "division by zero" (Invalid_argument "Rational.div: division by zero")
    (fun () -> ignore (Rational.div Rational.one Rational.zero));
  (* overflow detection on absurd products *)
  let huge = Rational.make Int64.max_int 1L in
  Alcotest.(check bool) "overflow raises" true
    (try
       ignore (Rational.mul huge huge);
       false
     with Rational.Overflow -> true)

let test_rational_enumeration_sums_to_one () =
  List.iter
    (fun (pn, pd, t) ->
      let total =
        Enumerate.fold_rational ~p_num:pn ~p_den:pd ~t ~init:Rational.zero
          ~f:(fun acc ~prob ~fathers:_ -> Rational.add acc prob)
      in
      Alcotest.(check bool)
        (Printf.sprintf "exactly one at p=%d/%d t=%d" pn pd t)
        true
        (Rational.equal total Rational.one))
    [ (1, 2, 7); (2, 3, 8); (1, 1, 6); (1, 10, 6) ]

let test_rational_matches_float_enumeration () =
  let er =
    (Equivalence.exact_rational ~p_num:1 ~p_den:2 ~t:8 ~a:4 ~b:7).Equivalence.event_prob
  in
  let ef = Events.prob_exact ~p:0.5 ~a:4 ~b:7 in
  checkf ~eps:1e-12 "rational P(E) = closed form" ef (Rational.to_float er);
  Alcotest.(check string) "and it is exactly 8/11" "8/11" (Rational.to_string er)

let test_lemma2_certificate () =
  (* the headline: exact-fraction equality of the conditional laws *)
  List.iter
    (fun (pn, pd, t, a, b) ->
      let r = Equivalence.exact_rational ~p_num:pn ~p_den:pd ~t ~a ~b in
      Alcotest.(check bool)
        (Printf.sprintf "certificate at p=%d/%d t=%d [%d,%d]" pn pd t (a + 1) b)
        true r.Equivalence.equal)
    [ (1, 2, 8, 4, 7); (3, 4, 8, 4, 7); (1, 10, 7, 3, 6); (9, 10, 8, 5, 8); (1, 1, 7, 3, 6) ]

(* --- Lower bound ----------------------------------------------------------------- *)

let test_lemma1_formula () =
  checkf "basic" 25. (Lower_bound.lemma1 ~set_size:100 ~event_prob:0.5);
  checkf "zero event" 0. (Lower_bound.lemma1 ~set_size:100 ~event_prob:0.)

let test_theorem1_bound_values () =
  let b = Lower_bound.theorem1 ~p:0.5 ~m:1 ~n:10_001 in
  Alcotest.(check int) "window size ~ sqrt(n)" 99 b.Lower_bound.set_size;
  Alcotest.(check int) "window start" 10_000 b.Lower_bound.a;
  Alcotest.(check bool) "bound close to |V|e^{-(1-p)}/2 and above it" true
    (b.Lower_bound.requests >= 49.5 *. Events.lemma3_bound ~p:0.5
    && b.Lower_bound.requests <= 49.5);
  (* target inside the equivalent window *)
  Alcotest.(check bool) "n in [a+1, b]" true (b.Lower_bound.n > b.Lower_bound.a && b.Lower_bound.n <= b.Lower_bound.b)

let test_theorem1_bound_scales_as_sqrt () =
  let req n = (Lower_bound.theorem1 ~p:0.6 ~m:1 ~n).Lower_bound.requests in
  let ratio = req 40_000 /. req 10_000 in
  Alcotest.(check bool)
    (Printf.sprintf "4x n gives ~2x bound (ratio %.3f)" ratio)
    true
    (ratio > 1.9 && ratio < 2.1)

let test_theorem1_merged () =
  let b = Lower_bound.theorem1 ~p:0.5 ~m:4 ~n:10_001 in
  Alcotest.(check bool) "merged window smaller by ~m but same order" true
    (b.Lower_bound.set_size >= 40 && b.Lower_bound.set_size <= 60);
  Alcotest.(check bool) "still a positive-constant event" true (b.Lower_bound.event_prob > 0.3)

let test_asymptotic_theorem1 () =
  checkf ~eps:1e-9 "p=1: sqrt(n)/2"
    (sqrt 10_000. /. 2.)
    (Lower_bound.asymptotic_theorem1 ~p:1.0 ~n:10_000);
  Alcotest.(check bool) "exact bound >= asymptotic-style estimate at same scale" true
    ((Lower_bound.theorem1 ~p:1.0 ~m:1 ~n:10_000).Lower_bound.requests
    >= 0.9 *. Lower_bound.asymptotic_theorem1 ~p:1.0 ~n:9_000)

let test_window_tradeoff () =
  let p = 0.5 and a = 10_000 in
  let choices = Lower_bound.window_tradeoff ~p ~a ~widths:[ 0; 1; 100; 400 ] in
  (match choices with
  | [ w0; w1; w100; w400 ] ->
    checkf "width 0 is vacuous" 0. w0.Lower_bound.requests;
    checkf "width 0 has P = 1" 1. w0.Lower_bound.event_prob;
    Alcotest.(check bool) "P decreases with width" true
      (w1.Lower_bound.event_prob >= w100.Lower_bound.event_prob
      && w100.Lower_bound.event_prob >= w400.Lower_bound.event_prob);
    (* each matches the direct product *)
    checkf ~eps:1e-12 "matches prob_exact"
      (Events.prob_exact ~p ~a ~b:(a + 100))
      w100.Lower_bound.event_prob
  | _ -> Alcotest.fail "four choices expected")

let test_optimal_window_matches_theory () =
  (* The continuous approximation log P ~ -(1-p) w^2 / (2a) puts the
     optimum at w* ~ sqrt(a / (1-p)), widening beyond the paper's
     sqrt(a) as p -> 1 (in the p = 1 star limit the event is free and
     the bound strengthens all the way to ~n/2). *)
  List.iter
    (fun (p, a) ->
      let best = Lower_bound.optimal_window ~p ~a () in
      let w_theory = sqrt (float_of_int a /. (1. -. p)) in
      let w = float_of_int best.Lower_bound.width in
      Alcotest.(check bool)
        (Printf.sprintf "p=%.1f a=%d: optimal width %.0f ~ theory %.0f" p a w w_theory)
        true
        (w >= w_theory /. 3. && w <= 3. *. w_theory);
      (* optimum beats (or matches) the canonical choice *)
      let canonical = Events.prob_exact ~p ~a ~b:(Events.window_end ~a) in
      let canonical_bound =
        Lower_bound.lemma1 ~set_size:(Events.window_end ~a - a) ~event_prob:canonical
      in
      Alcotest.(check bool) "optimum >= canonical" true
        (best.Lower_bound.requests >= canonical_bound -. 1e-9);
      (* and the gain factor follows the theory within generous slack *)
      let predicted_gain =
        exp (-0.5) /. (sqrt (1. -. p) *. exp (-.(1. -. p) /. 2.))
      in
      let gain = best.Lower_bound.requests /. canonical_bound in
      Alcotest.(check bool)
        (Printf.sprintf "gain %.2f ~ predicted %.2f" gain predicted_gain)
        true
        (gain <= 1.6 *. predicted_gain && gain >= predicted_gain /. 1.6))
    [ (0.3, 1_000); (0.5, 10_000); (0.9, 100_000) ]

let test_strong_exponent () =
  checkf "p=0.2" 0.3 (Lower_bound.strong_model_exponent ~p:0.2);
  Alcotest.(check bool) "trivial for p >= 1/2" true (Lower_bound.strong_model_exponent ~p:0.7 < 0.)

let test_cf_event_checker () =
  (* hand-built CF-like graph on 6 vertices, window = {5, 6}:
     arrivals: everyone born with 1 edge; no one points into the
     window; window vertices point into the core *)
  let g = Digraph.of_edges ~n:6 [ (1, 1); (2, 1); (3, 2); (4, 1); (5, 2); (6, 3) ] in
  let arrival = [| 1; 1; 1; 1; 1; 1 |] in
  Alcotest.(check bool) "event holds" true (Lower_bound.cf_event_holds g ~arrival ~n:6 ~window:2);
  (* break it: an extra edge pointing into the window *)
  let g2 = Digraph.of_edges ~n:6 [ (1, 1); (2, 1); (3, 2); (4, 1); (5, 2); (6, 3); (2, 5) ] in
  Alcotest.(check bool) "indegree violation detected" false
    (Lower_bound.cf_event_holds g2 ~arrival ~n:6 ~window:2);
  (* break it differently: window vertex used as OLD source *)
  let g3 = Digraph.of_edges ~n:6 [ (1, 1); (2, 1); (3, 2); (4, 1); (5, 2); (6, 3); (5, 1) ] in
  Alcotest.(check bool) "OLD-source violation detected" false
    (Lower_bound.cf_event_holds g3 ~arrival ~n:6 ~window:2);
  (* and: window vertex attaching inside the window *)
  let g4 = Digraph.of_edges ~n:6 [ (1, 1); (2, 1); (3, 2); (4, 1); (5, 2); (6, 5) ] in
  Alcotest.(check bool) "containment violation detected" false
    (Lower_bound.cf_event_holds g4 ~arrival ~n:6 ~window:2)

let test_theorem2_estimate_positive () =
  let rng = Rng.of_seed 8 in
  let est =
    Lower_bound.theorem2_estimate rng Sf_gen.Cooper_frieze.default ~n:400 ~trials:40 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "event rate %.2f bounded away from 0" est.Lower_bound.event_rate)
    true
    (est.Lower_bound.event_rate > 0.05);
  Alcotest.(check bool) "bound positive" true (est.Lower_bound.requests > 0.)

(* --- Moments ----------------------------------------------------------------------- *)

let test_moments_tiny_exact () =
  (* at t = 3: vertex 1 has E[d] = 1 + P(N_3 = 1) = 1 + 1/(2-p) *)
  let p = 0.4 in
  checkf ~eps:1e-12 "vertex 1 at t=3"
    (1. +. (1. /. (2. -. p)))
    (Sf_core.Moments.expected_indegree ~p ~v:1 ~t:3);
  checkf ~eps:1e-12 "vertex 2 at t=3"
    ((1. -. p) /. (2. -. p))
    (Sf_core.Moments.expected_indegree ~p ~v:2 ~t:3);
  checkf ~eps:1e-12 "newborn has indegree 0" 0. (Sf_core.Moments.expected_indegree ~p ~v:3 ~t:3)

let test_moments_match_enumeration () =
  (* exact recurrence vs exhaustive enumeration at t = 6 *)
  let p = 0.7 and t = 6 in
  for v = 1 to t do
    let enum =
      Enumerate.fold ~p ~t ~init:0. ~f:(fun acc ~prob ~fathers ->
          let d = Array.fold_left (fun c f -> if f = v then c + 1 else c) 0 fathers in
          acc +. (prob *. float_of_int d))
    in
    checkf ~eps:1e-10 (Printf.sprintf "E[d_6(%d)]" v) enum
      (Sf_core.Moments.expected_indegree ~p ~v ~t)
  done

let test_moments_profile_consistency () =
  let p = 0.45 and t = 300 in
  let profile = Sf_core.Moments.expected_indegree_profile ~p ~t in
  (* profile agrees with the per-vertex recurrence *)
  List.iter
    (fun v ->
      checkf ~eps:1e-9
        (Printf.sprintf "profile vs direct at v=%d" v)
        (Sf_core.Moments.expected_indegree ~p ~v ~t)
        profile.(v - 1))
    [ 1; 2; 7; 150; 300 ];
  (* expectations sum to the number of edges, exactly *)
  checkf ~eps:1e-6 "profile sums to t-1" (float_of_int (t - 1))
    (Array.fold_left ( +. ) 0. profile)

let test_moments_match_simulation () =
  let p = 0.8 and t = 500 and v = 3 in
  let rng = Rng.of_seed 15 in
  let trials = 3000 in
  let total = ref 0 in
  for _ = 1 to trials do
    total := !total + Digraph.in_degree (Sf_gen.Mori.tree rng ~p ~t) v
  done;
  let sim = float_of_int !total /. float_of_int trials in
  let exact = Sf_core.Moments.expected_indegree ~p ~v ~t in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.3f vs exact %.3f" sim exact)
    true
    (Float.abs (sim -. exact) /. exact < 0.08)

let test_moments_age_monotone () =
  let p = 0.5 and t = 1000 in
  let profile = Sf_core.Moments.expected_indegree_profile ~p ~t in
  for v = 1 to t - 1 do
    Alcotest.(check bool) "older vertices expect more" true (profile.(v - 1) >= profile.(v) -. 1e-12)
  done

(* --- Max degree --------------------------------------------------------------------- *)

let test_max_degree_series_monotone () =
  let rng = Rng.of_seed 9 in
  let series = Max_degree.max_indegree_series rng ~p:0.8 ~checkpoints:[ 10; 100; 1000 ] in
  Alcotest.(check int) "three points" 3 (List.length series);
  let values = List.map snd series in
  Alcotest.(check bool) "monotone" true (List.sort compare values = values);
  Alcotest.(check bool) "positive" true (List.for_all (fun v -> v >= 1) values)

let test_max_degree_exponent_near_p () =
  let rng = Rng.of_seed 10 in
  let p = 0.8 in
  let checkpoints = [ 512; 2048; 8192; 32768 ] in
  let series = Max_degree.mean_max_indegree rng ~p ~checkpoints ~trials:8 in
  let fit = Max_degree.fit_exponent series in
  Alcotest.(check bool)
    (Printf.sprintf "fitted exponent %.3f near p=%.1f" fit.Sf_stats.Regression.slope p)
    true
    (Float.abs (fit.Sf_stats.Regression.slope -. p) < 0.2)

let test_uniform_attachment_has_smaller_hubs () =
  (* contrast: p -> small means slower hub growth *)
  let rng = Rng.of_seed 11 in
  let at p =
    List.assoc 8192 (Max_degree.mean_max_indegree rng ~p ~checkpoints:[ 8192 ] ~trials:5)
  in
  Alcotest.(check bool) "hubs grow with p" true (at 1.0 > 2. *. at 0.2)

(* --- Searchability harness -------------------------------------------------------------- *)

let test_measure_produces_grid () =
  let rng = Rng.of_seed 12 in
  let spec = { Searchability.default_spec with Searchability.trials = 5 } in
  let points =
    Searchability.measure rng
      ~make:(Searchability.mori_instance ~p:0.5 ~m:1)
      ~strategies:[ Sf_search.Strategies.bfs; Sf_search.Strategies.high_degree ]
      ~sizes:[ 100; 200 ] ~spec
  in
  Alcotest.(check int) "2 sizes x 2 strategies" 4 (List.length points);
  List.iter
    (fun pt ->
      Alcotest.(check bool) "positive cost" true (pt.Searchability.mean > 0.);
      Alcotest.(check int) "trial count" 5 pt.Searchability.trials;
      Alcotest.(check bool) "median <= q90" true (pt.Searchability.median <= pt.Searchability.q90))
    points

let test_measure_is_reproducible () =
  let spec = { Searchability.default_spec with Searchability.trials = 3 } in
  let run () =
    Searchability.measure (Rng.of_seed 99)
      ~make:(Searchability.mori_instance ~p:0.7 ~m:1)
      ~strategies:[ Sf_search.Strategies.bfs ] ~sizes:[ 150 ] ~spec
  in
  let p1 = List.hd (run ()) and p2 = List.hd (run ()) in
  checkf "same mean from same master seed" p1.Searchability.mean p2.Searchability.mean

let test_exponent_fit_on_synthetic_points () =
  let mk n mean =
    {
      Searchability.n;
      strategy = "synthetic";
      trials = 1;
      mean;
      ci95 = 0.;
      median = mean;
      q90 = mean;
      timeouts = 0;
      gave_up = 0;
    }
  in
  let points = [ mk 100 10.; mk 400 20.; mk 1600 40.; mk 6400 80. ] in
  let fit = Searchability.exponent_fit points ~strategy:"synthetic" in
  checkf ~eps:1e-9 "recovers exponent 1/2" 0.5 fit.Sf_stats.Regression.slope

let test_points_to_csv () =
  let pt =
    {
      Searchability.n = 100;
      strategy = "bfs";
      trials = 5;
      mean = 12.5;
      ci95 = 1.25;
      median = 12.;
      q90 = 15.;
      timeouts = 0;
      gave_up = 1;
    }
  in
  let csv = Searchability.points_to_csv [ pt ] in
  match Sf_stats.Csv.parse csv with
  | [ header; row ] ->
    Alcotest.(check int) "nine columns" 9 (List.length header);
    Alcotest.(check string) "n" "100" (List.nth row 0);
    Alcotest.(check string) "strategy" "bfs" (List.nth row 1);
    Alcotest.(check string) "mean" "12.5" (List.nth row 3);
    Alcotest.(check string) "gave_up" "1" (List.nth row 8)
  | _ -> Alcotest.fail "header + one row expected"

let test_instances_well_formed () =
  let rng = Rng.of_seed 13 in
  let g, target = Searchability.mori_instance ~p:0.5 ~m:2 rng 50 in
  Alcotest.(check bool) "mori target within graph" true
    (target >= 1 && target <= Sf_graph.Ugraph.n_vertices g);
  Alcotest.(check bool) "mori graph has the window beyond the target" true
    (Sf_graph.Ugraph.n_vertices g >= 50);
  let g2, target2 = Searchability.cooper_frieze_instance Sf_gen.Cooper_frieze.default rng 80 in
  Alcotest.(check bool) "cf sized beyond target" true (Sf_graph.Ugraph.n_vertices g2 >= 80 + 8);
  Alcotest.(check int) "cf target is vertex n" 80 target2;
  let g3, target3 = Searchability.config_model_instance ~exponent:2.4 rng 300 in
  Alcotest.(check bool) "config target valid" true
    (target3 >= 1 && target3 <= Sf_graph.Ugraph.n_vertices g3)

(* --- Paper certificate -------------------------------------------------------------- *)

let test_paper_statements_all_verify () =
  let reports = Sf_core.Paper.verify ~seed:123 in
  Alcotest.(check int) "eight statements" 8 (List.length reports);
  List.iter
    (fun r ->
      List.iter
        (fun (name, ok) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s" r.Sf_core.Paper.statement.Sf_core.Paper.id name)
            true ok)
        r.Sf_core.Paper.results)
    reports;
  Alcotest.(check bool) "all pass" true (Sf_core.Paper.all_pass reports);
  let rendered = Sf_core.Paper.render reports in
  Alcotest.(check bool) "renders" true (String.length rendered > 500)

(* --- the headline integration check: measured cost respects the bound ------------------ *)

let test_measured_cost_respects_theorem1_bound () =
  (* At small scale, with the paper's metric (stop at a neighbour of
     the target), every strategy's mean cost must exceed the explicit
     Lemma-1 bound. This is the full pipeline: generator, oracle,
     strategies, harness, bound. *)
  let rng = Rng.of_seed 14 in
  let p = 0.75 in
  let n = 600 in
  let spec = { Searchability.default_spec with Searchability.trials = 15 } in
  let points =
    Searchability.measure rng
      ~make:(Searchability.mori_instance ~p ~m:1)
      ~strategies:(Sf_search.Strategies.weak_portfolio ())
      ~sizes:[ n ] ~spec
  in
  let bound = (Lower_bound.theorem1 ~p ~m:1 ~n).Lower_bound.requests in
  List.iter
    (fun pt ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: mean %.1f >= bound %.1f" pt.Searchability.strategy
           pt.Searchability.mean bound)
        true
        (pt.Searchability.mean >= bound))
    points

let suite =
  [
    ("enumeration counts", `Quick, test_enumeration_counts);
    ("enumeration sums to 1", `Quick, test_enumeration_probabilities_sum_to_one);
    ("enumeration guards", `Quick, test_enumeration_guards);
    ("graph of fathers", `Quick, test_graph_of_fathers);
    ("distribution normalised", `Quick, test_distribution_is_normalised);
    ("generator matches enumerator", `Slow, test_empirical_matches_enumeration);
    ("window end", `Quick, test_window_end);
    ("trivial window", `Quick, test_prob_exact_trivial_window);
    ("exact vs enumeration", `Quick, test_prob_exact_vs_enumeration);
    ("t-independence", `Quick, test_prob_exact_independent_of_t);
    ("lemma 3 bound holds", `Quick, test_lemma3_bound_holds);
    ("lemma 3 direction", `Quick, test_lemma3_bound_asymptotically_tight_direction);
    ("monte carlo agrees", `Quick, test_monte_carlo_agrees_with_exact);
    ("holds checker", `Quick, test_holds_checker);
    ("conditioned sampler event", `Quick, test_conditioned_sampler_matches_event_prob);
    ("lemma 2 exact equivalence", `Quick, test_exact_equivalence_lemma2);
    ("unconditioned not exchangeable", `Quick, test_exact_equivalence_fails_without_conditioning);
    ("window statistic", `Quick, test_window_statistic_is_sigma_covariant);
    ("MC equivalence not rejected", `Quick, test_monte_carlo_equivalence_not_rejected);
    ("MC detects inequivalence", `Quick, test_monte_carlo_detects_inequivalence);
    ("MC guards", `Quick, test_monte_carlo_guards);
    ("rational basics", `Quick, test_rational_basics);
    ("rational guards", `Quick, test_rational_guards);
    ("rational enumeration total", `Quick, test_rational_enumeration_sums_to_one);
    ("rational matches float", `Quick, test_rational_matches_float_enumeration);
    ("lemma 2 rational certificate", `Quick, test_lemma2_certificate);
    ("lemma 1 formula", `Quick, test_lemma1_formula);
    ("theorem 1 bound values", `Quick, test_theorem1_bound_values);
    ("theorem 1 sqrt scaling", `Quick, test_theorem1_bound_scales_as_sqrt);
    ("theorem 1 merged", `Quick, test_theorem1_merged);
    ("asymptotic theorem 1", `Quick, test_asymptotic_theorem1);
    ("strong exponent", `Quick, test_strong_exponent);
    ("window tradeoff", `Quick, test_window_tradeoff);
    ("optimal window vs theory", `Quick, test_optimal_window_matches_theory);
    ("cf event checker", `Quick, test_cf_event_checker);
    ("theorem 2 estimate", `Quick, test_theorem2_estimate_positive);
    ("moments tiny exact", `Quick, test_moments_tiny_exact);
    ("moments vs enumeration", `Quick, test_moments_match_enumeration);
    ("moments profile consistency", `Quick, test_moments_profile_consistency);
    ("moments vs simulation", `Quick, test_moments_match_simulation);
    ("moments age monotone", `Quick, test_moments_age_monotone);
    ("max degree series", `Quick, test_max_degree_series_monotone);
    ("max degree exponent", `Slow, test_max_degree_exponent_near_p);
    ("hubs grow with p", `Quick, test_uniform_attachment_has_smaller_hubs);
    ("measure grid", `Quick, test_measure_produces_grid);
    ("measure reproducible", `Quick, test_measure_is_reproducible);
    ("exponent fit", `Quick, test_exponent_fit_on_synthetic_points);
    ("points to csv", `Quick, test_points_to_csv);
    ("instances well formed", `Quick, test_instances_well_formed);
    ("paper certificate", `Slow, test_paper_statements_all_verify);
    ("measured cost respects bound", `Slow, test_measured_cost_respects_theorem1_bound);
  ]
