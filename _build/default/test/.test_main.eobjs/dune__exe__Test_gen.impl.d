test/test_gen.ml: Alcotest Array Float Fun Gen List Printf QCheck QCheck_alcotest Result Sf_core Sf_gen Sf_graph Sf_prng Sf_stats String
