test/test_search.ml: Alcotest Array Gen List Printf QCheck QCheck_alcotest Sf_gen Sf_graph Sf_prng Sf_search String
