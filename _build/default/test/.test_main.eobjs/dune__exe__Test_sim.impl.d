test/test_sim.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Sf_gen Sf_graph Sf_prng Sf_sim
