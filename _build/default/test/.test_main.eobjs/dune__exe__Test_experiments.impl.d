test/test_experiments.ml: Alcotest List Printf Sf_experiments String
