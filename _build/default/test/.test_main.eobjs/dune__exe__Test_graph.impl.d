test/test_graph.ml: Alcotest Array Filename Float Fun Gen List Printf QCheck QCheck_alcotest Sf_core Sf_gen Sf_graph Sf_prng String Sys
