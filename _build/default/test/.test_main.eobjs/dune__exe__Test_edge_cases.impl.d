test/test_edge_cases.ml: Alcotest Array Float Gen Int64 Printf QCheck QCheck_alcotest Sf_core Sf_gen Sf_graph Sf_prng Sf_search Sf_stats
