test/test_main.ml: Alcotest Test_core Test_edge_cases Test_experiments Test_gen Test_graph Test_prng Test_search Test_sim Test_stats
