test/test_stats.ml: Alcotest Array Filename Float Fun Gen List Printf QCheck QCheck_alcotest Sf_prng Sf_stats String Sys
