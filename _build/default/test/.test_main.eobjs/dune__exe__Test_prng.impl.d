test/test_prng.ml: Alcotest Array Float Fun Gen Hashtbl Printf QCheck QCheck_alcotest Seq Sf_prng
