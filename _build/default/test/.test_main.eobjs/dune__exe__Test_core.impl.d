test/test_core.ml: Alcotest Array Float Hashtbl Int64 List Printf Sf_core Sf_gen Sf_graph Sf_prng Sf_search Sf_stats String
