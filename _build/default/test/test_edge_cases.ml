(* API-contract tests: every documented precondition raises the
   documented exception, and boundary inputs behave as specified.
   Complements the behavioural suites with robustness coverage. *)

module Rng = Sf_prng.Rng
module Digraph = Sf_graph.Digraph
module Ugraph = Sf_graph.Ugraph

let rng () = Rng.of_seed 12345

let raises name exn f = Alcotest.check_raises name exn f

(* --- prng ------------------------------------------------------------- *)

let test_dist_guards () =
  let r = rng () in
  raises "exponential rate" (Invalid_argument "Dist.exponential: rate must be positive")
    (fun () -> ignore (Sf_prng.Dist.exponential r ~rate:0.));
  raises "geometric p=0" (Invalid_argument "Dist.geometric: need 0 < p <= 1") (fun () ->
      ignore (Sf_prng.Dist.geometric r ~p:0.));
  raises "zeta alpha" (Invalid_argument "Dist.zeta: need alpha > 1") (fun () ->
      ignore (Sf_prng.Dist.zeta r ~alpha:1.));
  raises "binomial n" (Invalid_argument "Dist.binomial: n must be non-negative") (fun () ->
      ignore (Sf_prng.Dist.binomial r ~n:(-1) ~p:0.5));
  raises "pareto" (Invalid_argument "Dist.pareto: need alpha > 0 and x_min > 0") (fun () ->
      ignore (Sf_prng.Dist.pareto r ~alpha:0. ~x_min:1.));
  raises "zipf n" (Invalid_argument "Dist.zipf_bounded: n must be >= 1") (fun () ->
      ignore (Sf_prng.Dist.zipf_bounded r ~alpha:2. ~n:0));
  raises "poisson mean" (Invalid_argument "Dist.poisson: mean must be non-negative")
    (fun () -> ignore (Sf_prng.Dist.poisson r ~mean:(-1.)))

let test_dist_boundaries () =
  let r = rng () in
  Alcotest.(check int) "binomial n=0" 0 (Sf_prng.Dist.binomial r ~n:0 ~p:0.5);
  Alcotest.(check int) "zipf n=1 is constant" 1 (Sf_prng.Dist.zipf_bounded r ~alpha:2.5 ~n:1);
  Alcotest.(check int) "poisson mean 0" 0 (Sf_prng.Dist.poisson r ~mean:0.);
  (* power-law sequence degenerate support *)
  let seq = Sf_prng.Dist.discrete_power_law_sequence r ~exponent:2.5 ~d_min:3 ~d_max:3 ~n:10 in
  Alcotest.(check bool) "degenerate support constant" true (Array.for_all (( = ) 3) seq)

let test_shuffle_guards () =
  let r = rng () in
  raises "k > n" (Invalid_argument "Shuffle.sample_without_replacement: need 0 <= k <= n")
    (fun () -> ignore (Sf_prng.Shuffle.sample_without_replacement r ~k:5 ~n:3));
  Alcotest.(check int) "k = 0" 0
    (Array.length (Sf_prng.Shuffle.sample_without_replacement r ~k:0 ~n:3));
  Alcotest.(check int) "empty permutation" 0 (Array.length (Sf_prng.Shuffle.permutation r 0))

(* --- graph ------------------------------------------------------------- *)

let test_empty_graph_behaviour () =
  let g = Digraph.create () in
  Alcotest.(check int) "no vertices" 0 (Digraph.n_vertices g);
  Alcotest.(check int) "no edges" 0 (Digraph.n_edges g);
  Alcotest.(check bool) "nothing is a member" false (Digraph.mem_vertex g 1);
  let u = Ugraph.of_digraph g in
  Alcotest.(check bool) "empty is connected" true (Sf_graph.Traversal.is_connected u);
  Alcotest.(check int) "empty diameter" 0 (Sf_graph.Traversal.diameter_exact u);
  Alcotest.(check int) "empty coreness" 0 (Array.length (Sf_graph.Kcore.coreness u))

let test_single_vertex_graph () =
  let g = Digraph.create () in
  ignore (Digraph.add_vertex g);
  let u = Ugraph.of_digraph g in
  Alcotest.(check bool) "single vertex connected" true (Sf_graph.Traversal.is_connected u);
  Alcotest.(check int) "eccentricity" 0 (Sf_graph.Traversal.eccentricity u 1);
  Alcotest.(check (float 1e-9)) "assortativity of edgeless" 0.
    (Sf_graph.Correlation.assortativity u)

let test_self_loop_only_graph () =
  let g = Digraph.of_edges ~n:1 [ (1, 1) ] in
  let u = Ugraph.of_digraph g in
  Alcotest.(check int) "loop handle counted once" 1 (Ugraph.degree u 1);
  Alcotest.(check int) "digraph degree counts twice" 2 (Digraph.degree g 1);
  Alcotest.(check int) "coreness with loop" 1 (Sf_graph.Kcore.coreness u).(0);
  Alcotest.(check (float 1e-9)) "clustering ignores loops" 0.
    (Sf_graph.Clustering.local_coefficient u 1)

let test_subgraph_guards () =
  let g = Digraph.of_edges ~n:3 [ (1, 2) ] in
  raises "out of range" (Invalid_argument "Subgraph.induced: vertex out of range") (fun () ->
      ignore (Sf_graph.Subgraph.induced g ~vertices:[ 4 ]));
  raises "duplicate" (Invalid_argument "Subgraph.induced: duplicate vertex") (fun () ->
      ignore (Sf_graph.Subgraph.induced g ~vertices:[ 1; 1 ]));
  let sub, _ = Sf_graph.Subgraph.induced g ~vertices:[] in
  Alcotest.(check int) "empty selection" 0 (Digraph.n_vertices sub)

let test_permute_guards () =
  let g = Digraph.of_edges ~n:3 [ (1, 2) ] in
  raises "size mismatch" (Invalid_argument "Permute.apply: size mismatch") (fun () ->
      ignore (Sf_graph.Permute.apply [| 1; 2 |] g));
  raises "not a permutation" (Invalid_argument "Permute.apply: not a permutation") (fun () ->
      ignore (Sf_graph.Permute.apply [| 1; 1; 2 |] g));
  raises "apply_vertex range" (Invalid_argument "Permute.apply_vertex: out of range")
    (fun () -> ignore (Sf_graph.Permute.apply_vertex [| 1; 2 |] 3))

(* --- gen ------------------------------------------------------------------ *)

let test_generator_guards () =
  let r = rng () in
  raises "mori graph n*m" (Invalid_argument "Mori.graph: need n * m >= 2") (fun () ->
      ignore (Sf_gen.Mori.graph r ~p:0.5 ~m:1 ~n:1));
  raises "merge divisibility" (Invalid_argument "Mori.merge: m must divide the vertex count")
    (fun () -> ignore (Sf_gen.Mori.merge ~m:3 (Sf_gen.Mori.tree r ~p:0.5 ~t:10)));
  raises "ba n" (Invalid_argument "Barabasi_albert.generate: need n >= 2") (fun () ->
      ignore (Sf_gen.Barabasi_albert.generate r ~n:1 ~m:1));
  raises "lcd t" (Invalid_argument "Lcd.tree1: need t >= 1") (fun () ->
      ignore (Sf_gen.Lcd.tree1 r ~t:0));
  raises "kleinberg side" (Invalid_argument "Kleinberg.generate: need side >= 2") (fun () ->
      ignore (Sf_gen.Kleinberg.generate r ~side:1 ~r:2. ()));
  raises "cf steps" (Invalid_argument "Cooper_frieze.generate: steps must be non-negative")
    (fun () -> ignore (Sf_gen.Cooper_frieze.generate r Sf_gen.Cooper_frieze.default ~steps:(-1)));
  raises "config d_min"
    (Invalid_argument "Config_model.power_law_degrees: need d_min >= 1") (fun () ->
      ignore (Sf_gen.Config_model.power_law_degrees r ~n:10 ~exponent:2.5 ~d_min:0 ()))

let test_tiny_generators () =
  let r = rng () in
  (* the smallest legal instances of everything *)
  Alcotest.(check int) "mori t=2" 2 (Digraph.n_vertices (Sf_gen.Mori.tree r ~p:1.0 ~t:2));
  Alcotest.(check int) "ba n=2" 2 (Digraph.n_vertices (Sf_gen.Barabasi_albert.generate r ~n:2 ~m:3));
  Alcotest.(check int) "lcd t=1" 1 (Digraph.n_vertices (Sf_gen.Lcd.tree1 r ~t:1));
  Alcotest.(check int) "cf n=1" 1
    (Digraph.n_vertices (Sf_gen.Cooper_frieze.generate_n_vertices r Sf_gen.Cooper_frieze.default ~n:1));
  Alcotest.(check int) "gnm empty" 0 (Digraph.n_edges (Sf_gen.Erdos_renyi.gnm r ~n:5 ~m:0));
  Alcotest.(check int) "config all-zero degrees" 0
    (Digraph.n_edges (Sf_gen.Config_model.of_degree_sequence r [| 0; 0 |]))

(* --- core ---------------------------------------------------------------- *)

let test_core_guards () =
  raises "events step" (Invalid_argument "Events.step_prob: need 2 <= a < k") (fun () ->
      ignore (Sf_core.Events.step_prob ~p:0.5 ~a:5 ~k:5));
  raises "events window" (Invalid_argument "Events.window_end: need a >= 2") (fun () ->
      ignore (Sf_core.Events.window_end ~a:1));
  raises "lemma1 negative" (Invalid_argument "Lower_bound.lemma1: negative set size")
    (fun () -> ignore (Sf_core.Lower_bound.lemma1 ~set_size:(-1) ~event_prob:0.5));
  raises "theorem1 n" (Invalid_argument "Lower_bound.theorem1: need n >= 3") (fun () ->
      ignore (Sf_core.Lower_bound.theorem1 ~p:0.5 ~m:1 ~n:2));
  raises "moments v range" (Invalid_argument "Moments.expected_indegree: need 1 <= v <= t")
    (fun () -> ignore (Sf_core.Moments.expected_indegree ~p:0.5 ~v:5 ~t:4));
  raises "rational fold p range"
    (Invalid_argument "Enumerate.fold_rational: need 0 < p_num <= p_den") (fun () ->
      ignore
        (Sf_core.Enumerate.fold_rational ~p_num:3 ~p_den:2 ~t:4 ~init:()
           ~f:(fun () ~prob:_ ~fathers:_ -> ())))

let test_equivalence_window_guards () =
  raises "bad window" (Invalid_argument "Equivalence.exact: need 2 <= a <= b <= t") (fun () ->
      ignore (Sf_core.Equivalence.exact ~p:0.5 ~t:6 ~a:5 ~b:3));
  raises "sigma too small for window"
    (Invalid_argument "Equivalence.random_window_sigma: need b > a") (fun () ->
      ignore (Sf_core.Equivalence.random_window_sigma (rng ()) ~t:6 ~a:4 ~b:4))

let test_trivial_windows_are_equivalent () =
  (* a single-vertex window is vacuously exchangeable: no permutations *)
  let r = Sf_core.Equivalence.exact ~p:0.5 ~t:6 ~a:4 ~b:5 in
  Alcotest.(check int) "no transpositions" 0 r.Sf_core.Equivalence.permutations_checked;
  Alcotest.(check (float 1e-12)) "no discrepancy" 0. r.Sf_core.Equivalence.max_discrepancy

(* --- search ---------------------------------------------------------------- *)

let test_oracle_guards () =
  let u = Ugraph.of_digraph (Digraph.of_edges ~n:3 [ (1, 2); (2, 3) ]) in
  raises "bad source" (Invalid_argument "Oracle.start: bad source") (fun () ->
      ignore (Sf_search.Oracle.start ~rng:(rng ()) Sf_search.Oracle.Weak u ~source:0 ~target:1));
  raises "bad target" (Invalid_argument "Oracle.start: bad target") (fun () ->
      ignore (Sf_search.Oracle.start ~rng:(rng ()) Sf_search.Oracle.Weak u ~source:1 ~target:9));
  let o = Sf_search.Oracle.start ~rng:(rng ()) Sf_search.Oracle.Weak u ~source:1 ~target:3 in
  raises "unknown handle" (Invalid_argument "Oracle: unknown handle") (fun () ->
      ignore (Sf_search.Oracle.request_weak o ~owner:1 999))

let test_strategy_guards () =
  raises "restart range" (Invalid_argument "Strategies.restart_walk: need restart in [0,1)")
    (fun () -> ignore (Sf_search.Strategies.restart_walk ~restart:1.))

let test_percolation_guards () =
  let u = Ugraph.of_digraph (Digraph.of_edges ~n:2 [ (1, 2) ]) in
  let params =
    { Sf_search.Percolation.replication_walk = 0; query_walk = 0; broadcast_prob = 0.5;
      max_messages = 10 }
  in
  (* owner-only replication, query from the owner itself: immediate hit *)
  let res = Sf_search.Percolation.run (rng ()) u params ~source:2 ~target:2 in
  Alcotest.(check bool) "self-query hits" true res.Sf_search.Percolation.hit;
  Alcotest.(check int) "at zero cost" 0 res.Sf_search.Percolation.messages

(* --- stats ---------------------------------------------------------------- *)

let test_stats_guards () =
  raises "power law x_min" (Invalid_argument "Power_law.mle_alpha: need x_min >= 1")
    (fun () -> ignore (Sf_stats.Power_law.mle_alpha [| 2; 3 |] ~x_min:0));
  raises "empty tail" (Invalid_argument "Power_law: empty tail sample") (fun () ->
      ignore (Sf_stats.Power_law.mle_alpha [| 1; 2 |] ~x_min:10));
  raises "histogram bins" (Invalid_argument "Histogram.linear: need bins >= 1") (fun () ->
      ignore (Sf_stats.Histogram.linear [| 1 |] ~bins:0));
  raises "gamma a" (Invalid_argument "Tests.gamma_p: need a > 0") (fun () ->
      ignore (Sf_stats.Tests.gamma_p ~a:0. ~x:1.));
  raises "chi2 empty" (Invalid_argument "Tests.chi_square_two_sample: empty sample")
    (fun () -> ignore (Sf_stats.Tests.chi_square_two_sample [] [ ("a", 1) ]))

let test_summary_extremes () =
  let s = Sf_stats.Summary.create () in
  Alcotest.(check (float 0.)) "empty min is +inf" infinity (Sf_stats.Summary.min_value s);
  Alcotest.(check (float 0.)) "empty max is -inf" neg_infinity (Sf_stats.Summary.max_value s);
  let merged = Sf_stats.Summary.merge s (Sf_stats.Summary.of_array [| 2. |]) in
  Alcotest.(check (float 1e-12)) "merge with empty" 2. (Sf_stats.Summary.mean merged)

(* --- roundtrip and algebra properties ---------------------------------------- *)

let small_rational =
  QCheck.(
    make
      ~print:(fun (n, d) -> Printf.sprintf "%d/%d" n d)
      Gen.(pair (int_range (-50) 50) (int_range 1 50)))

let rat (n, d) = Sf_core.Rational.make (Int64.of_int n) (Int64.of_int d)

let prop_rational_field_laws =
  QCheck.Test.make ~name:"rational arithmetic satisfies ring laws" ~count:300
    QCheck.(triple small_rational small_rational small_rational)
    (fun (a, b, c) ->
      let open Sf_core.Rational in
      let a = rat a and b = rat b and c = rat c in
      equal (add a b) (add b a)
      && equal (mul a b) (mul b a)
      && equal (add (add a b) c) (add a (add b c))
      && equal (mul (mul a b) c) (mul a (mul b c))
      && equal (mul a (add b c)) (add (mul a b) (mul a c))
      && equal (sub (add a b) b) a)

let prop_gio_roundtrip =
  QCheck.Test.make ~name:"edge-list serialisation roundtrips" ~count:60
    QCheck.(pair (int_bound 100_000) (int_range 2 80))
    (fun (seed, t) ->
      let g = Sf_gen.Mori.graph (Rng.of_seed seed) ~p:0.6 ~m:2 ~n:t in
      let g' = Sf_graph.Gio.of_edge_list (Sf_graph.Gio.to_edge_list g) in
      Digraph.equal_structure g g'
      && Digraph.canonical_key g = Digraph.canonical_key g')

let prop_csv_roundtrip =
  QCheck.Test.make ~name:"csv roundtrips arbitrary cells" ~count:120
    QCheck.(list_of_size Gen.(int_range 1 6) (list_of_size Gen.(return 3) printable_string))
    (fun rows ->
      let header = [ "a"; "b"; "c" ] in
      Sf_stats.Csv.parse (Sf_stats.Csv.to_string ~header ~rows) = header :: rows)

let prop_summary_merge_associative =
  QCheck.Test.make ~name:"summary merge consistent with concatenation" ~count:120
    QCheck.(pair (list (float_range (-50.) 50.)) (list (float_range (-50.) 50.)))
    (fun (xs, ys) ->
      let s1 = Sf_stats.Summary.of_array (Array.of_list xs) in
      let s2 = Sf_stats.Summary.of_array (Array.of_list ys) in
      let merged = Sf_stats.Summary.merge s1 s2 in
      let direct = Sf_stats.Summary.of_array (Array.of_list (xs @ ys)) in
      Sf_stats.Summary.count merged = Sf_stats.Summary.count direct
      && Float.abs (Sf_stats.Summary.mean merged -. Sf_stats.Summary.mean direct) < 1e-9
      && Float.abs (Sf_stats.Summary.variance merged -. Sf_stats.Summary.variance direct)
         < 1e-6)

let suite_properties =
  [
    QCheck_alcotest.to_alcotest prop_rational_field_laws;
    QCheck_alcotest.to_alcotest prop_gio_roundtrip;
    QCheck_alcotest.to_alcotest prop_csv_roundtrip;
    QCheck_alcotest.to_alcotest prop_summary_merge_associative;
  ]

let suite =
  [
    ("dist guards", `Quick, test_dist_guards);
    ("dist boundaries", `Quick, test_dist_boundaries);
    ("shuffle guards", `Quick, test_shuffle_guards);
    ("empty graph", `Quick, test_empty_graph_behaviour);
    ("single vertex", `Quick, test_single_vertex_graph);
    ("self-loop only", `Quick, test_self_loop_only_graph);
    ("subgraph guards", `Quick, test_subgraph_guards);
    ("permute guards", `Quick, test_permute_guards);
    ("generator guards", `Quick, test_generator_guards);
    ("tiny generators", `Quick, test_tiny_generators);
    ("core guards", `Quick, test_core_guards);
    ("equivalence window guards", `Quick, test_equivalence_window_guards);
    ("trivial windows", `Quick, test_trivial_windows_are_equivalent);
    ("oracle guards", `Quick, test_oracle_guards);
    ("strategy guards", `Quick, test_strategy_guards);
    ("percolation corner", `Quick, test_percolation_guards);
    ("stats guards", `Quick, test_stats_guards);
    ("summary extremes", `Quick, test_summary_extremes);
  ]
  @ suite_properties
