bin/sfsearch.mli:
