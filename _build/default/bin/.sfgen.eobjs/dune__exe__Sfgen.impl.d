bin/sfgen.ml: Arg Cmd Cmdliner Printf Sf_gen Sf_graph Sf_prng Sf_stats Term
