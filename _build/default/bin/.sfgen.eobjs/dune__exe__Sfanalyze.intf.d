bin/sfanalyze.mli:
