bin/sfgen.mli:
