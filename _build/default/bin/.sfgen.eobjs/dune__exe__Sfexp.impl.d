bin/sfexp.ml: Arg Cmd Cmdliner List Printf Sf_core Sf_experiments String Term
