bin/sfanalyze.ml: Arg Cmd Cmdliner List Printf Sf_gen Sf_graph Sf_prng Sf_stats String Term
