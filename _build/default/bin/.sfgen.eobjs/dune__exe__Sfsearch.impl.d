bin/sfsearch.ml: Arg Cmd Cmdliner List Option Printf Sf_core Sf_gen Sf_graph Sf_prng Sf_search Sf_stats String Term
