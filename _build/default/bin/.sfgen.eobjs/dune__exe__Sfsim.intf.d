bin/sfsim.mli:
