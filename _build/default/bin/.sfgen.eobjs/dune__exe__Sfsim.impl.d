bin/sfsim.ml: Arg Cmd Cmdliner Option Printf Sf_gen Sf_graph Sf_prng Sf_sim Sf_stats String Term
