bin/sfexp.mli:
