type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = Array.make 16 None; len = 0; next_seq = 0 }

let length t = t.len
let is_empty t = t.len = 0

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get t i = match t.heap.(i) with Some e -> e | None -> assert false

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let schedule t ~time payload =
  if Float.is_nan time || time < 0. then invalid_arg "Event_queue.schedule: bad time";
  if t.len = Array.length t.heap then begin
    let heap' = Array.make (2 * t.len) None in
    Array.blit t.heap 0 heap' 0 t.len;
    t.heap <- heap'
  end;
  t.heap.(t.len) <- Some { time; seq = t.next_seq; payload };
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  let i = ref (t.len - 1) in
  while !i > 0 && earlier (get t !i) (get t ((!i - 1) / 2)) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let peek_time t = if t.len = 0 then None else Some (get t 0).time

let next t =
  if t.len = 0 then None
  else begin
    let top = get t 0 in
    t.len <- t.len - 1;
    t.heap.(0) <- t.heap.(t.len);
    t.heap.(t.len) <- None;
    let i = ref 0 in
    let continue = ref (t.len > 0) in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.len && earlier (get t l) (get t !smallest) then smallest := l;
      if r < t.len && earlier (get t r) (get t !smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap t !i !smallest;
        i := !smallest
      end
    done;
    Some (top.time, top.payload)
  end
