lib/sim/query_sim.mli: Network Sf_prng
