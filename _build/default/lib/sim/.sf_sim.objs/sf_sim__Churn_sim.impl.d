lib/sim/churn_sim.ml: Array Network Query_sim Sf_prng
