lib/sim/network.mli: Sf_graph Sf_prng
