lib/sim/network.ml: Float Sf_graph Sf_prng
