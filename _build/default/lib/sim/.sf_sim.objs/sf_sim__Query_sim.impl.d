lib/sim/query_sim.ml: Array Event_queue Network Option Sf_graph Sf_prng
