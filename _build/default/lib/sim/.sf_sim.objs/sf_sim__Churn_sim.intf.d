lib/sim/churn_sim.mli: Network Query_sim Sf_prng
