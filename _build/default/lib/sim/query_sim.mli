(** Discrete-event simulation of unstructured-P2P query protocols.

    The search-cost experiments (T1–T4, T11) count oracle requests; a
    deployed system also cares about {e wall-clock latency} and
    {e total traffic} when queries propagate concurrently. This module
    runs the classic query-dissemination protocols as genuinely
    distributed processes over {!Network.t} — every message is an
    event with a transmission delay, nodes react only to deliveries —
    and reports both cost dimensions:

    - {!Flood}: forward to every neighbour except the sender, bounded
      by a TTL (Gnutella's original scheme);
    - {!K_walkers}: [k] concurrent random walkers, each forwarded to
      one uniform neighbour per hop (Lv et al.'s replacement that
      trades latency for traffic);
    - {!Percolation}: forward over each link independently with
      probability [q] (the spread phase of Sarshar et al.).

    The simulation stops at the first delivery to a node holding the
    content (recording time and traffic so far), on traffic exhaustion
    ([max_messages]), or when no events remain. Duplicate-suppression
    state ("seen this query id") is per node, as in the real
    protocols. *)

type protocol =
  | Flood of { ttl : int }
  | K_walkers of { k : int; ttl : int }
  | Percolation of { q : float; ttl : int }

type result = {
  hit : bool;
  hit_time : float option; (** simulated time of the first hit *)
  messages : int; (** transmissions before the run ended *)
  contacted : int; (** distinct nodes that saw the query *)
  dropped : int; (** transmissions lost to dead recipients (non-zero
                     only with a liveness filter) *)
  duration : float; (** simulated time when the run ended *)
}

val query :
  ?max_messages:int ->
  ?alive:(int -> float -> bool) ->
  rng:Sf_prng.Rng.t ->
  Network.t ->
  protocol ->
  source:int ->
  holders:bool array ->
  result
(** Run one query from [source] against the content-holder set
    ([holders.(v-1)]); a source that holds the content hits at time 0
    with no messages. [max_messages] defaults to [64 × nodes].
    [alive v t] (default: always [true]) gates deliveries: a message
    arriving at a node that is dead at time [t] is dropped and counted
    in [dropped], and a dead holder's content is unavailable. The
    filter is only ever queried with non-decreasing [t] (event order),
    which the churn wrapper in {!Churn_sim} relies on.
    @raise Invalid_argument on malformed protocol parameters, a bad
    source, or a holder array of the wrong length. *)

val single_target : Network.t -> int -> bool array
(** Holder set containing exactly one node. *)
