(** Time-ordered event queue: the heart of the discrete-event
    simulator. A binary min-heap on event time with a stable tiebreak
    (insertion sequence), so simultaneous events run in schedule
    order — a determinism requirement for reproducible simulations. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val schedule : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on NaN or negative time. *)

val next : 'a t -> (float * 'a) option
(** Pop the earliest event. *)

val peek_time : 'a t -> float option
