type latency_model = Constant of float | Uniform of float * float | Exponential of float

type t = { graph : Sf_graph.Ugraph.t; latency : latency_model }

let validate = function
  | Constant c -> if c <= 0. then invalid_arg "Network: constant latency must be positive"
  | Uniform (lo, hi) ->
    if lo <= 0. || hi <= lo then invalid_arg "Network: need 0 < lo < hi"
  | Exponential mean -> if mean <= 0. then invalid_arg "Network: mean latency must be positive"

let create ?(latency = Constant 1.) graph =
  validate latency;
  { graph; latency }

let graph t = t.graph
let n_nodes t = Sf_graph.Ugraph.n_vertices t.graph

let sample_latency t rng =
  match t.latency with
  | Constant c -> c
  | Uniform (lo, hi) -> Sf_prng.Dist.uniform rng ~lo ~hi
  | Exponential mean ->
    (* clamp away from zero so event times strictly advance *)
    Float.max 1e-9 (Sf_prng.Dist.exponential rng ~rate:(1. /. mean))
