(** The simulated network: a topology plus a link-latency model.

    Latencies are drawn per message transmission (links are not
    assigned a fixed latency — the common choice for modelling
    queueing jitter in overlay studies; a [Constant] model recovers
    the synchronous-rounds picture). *)

type latency_model =
  | Constant of float
  | Uniform of float * float  (** [lo, hi) *)
  | Exponential of float  (** mean *)

type t

val create : ?latency:latency_model -> Sf_graph.Ugraph.t -> t
(** Default latency: [Constant 1.] (hop count = time).
    @raise Invalid_argument on non-positive latency parameters. *)

val graph : t -> Sf_graph.Ugraph.t
val n_nodes : t -> int

val sample_latency : t -> Sf_prng.Rng.t -> float
(** One transmission delay; always > 0. *)
