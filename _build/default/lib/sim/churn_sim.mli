(** Query dissemination under churn.

    Peer-to-peer populations turn over constantly; a protocol's
    robustness is its hit rate when a fraction of the overlay is dead
    at any moment. This module runs {!Query_sim}'s protocols over a
    network whose nodes alternate between alive and dead phases
    (exponential lifetimes — the standard memoryless churn model):

    - each node is initially alive with probability
      [uptime = mean_up / (mean_up + mean_down)], the stationary law;
    - alive→dead and dead→alive transitions are scheduled as events
      with exponential durations ([mean_up], [mean_down]);
    - a message delivered to a dead node is dropped (its payload is
      lost — walkers die, flood branches are pruned);
    - content held by a dead node is unavailable while it is down.

    The source is forced alive at query time (a dead peer asks no
    questions). Costs count transmissions as in {!Query_sim}. *)

type churn = {
  mean_up : float; (** mean alive duration *)
  mean_down : float; (** mean dead duration *)
}

val uptime : churn -> float
(** Stationary probability of being alive. *)

type result = {
  hit : bool;
  hit_time : float option;
  messages : int;
  dropped : int; (** transmissions lost to dead recipients *)
  duration : float;
}

val query :
  ?max_messages:int ->
  rng:Sf_prng.Rng.t ->
  Network.t ->
  churn ->
  Query_sim.protocol ->
  source:int ->
  holders:bool array ->
  result
(** One query under churn. @raise Invalid_argument on non-positive
    churn means or the malformed inputs {!Query_sim.query} rejects. *)
