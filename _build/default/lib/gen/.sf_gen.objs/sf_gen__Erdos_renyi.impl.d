lib/gen/erdos_renyi.ml: Hashtbl Sf_graph Sf_prng
