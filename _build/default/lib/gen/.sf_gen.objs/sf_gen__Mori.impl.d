lib/gen/mori.ml: Array Sf_graph Sf_prng
