lib/gen/config_model.mli: Sf_graph Sf_prng
