lib/gen/erdos_renyi.mli: Sf_graph Sf_prng
