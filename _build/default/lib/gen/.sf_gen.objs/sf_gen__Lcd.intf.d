lib/gen/lcd.mli: Sf_graph Sf_prng
