lib/gen/mori.mli: Sf_graph Sf_prng
