lib/gen/cooper_frieze.ml: Array Float List Result Sf_graph Sf_prng
