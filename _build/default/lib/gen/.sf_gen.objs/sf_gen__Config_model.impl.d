lib/gen/config_model.ml: Array Hashtbl Sf_graph Sf_prng
