lib/gen/uniform_attachment.mli: Sf_graph Sf_prng
