lib/gen/watts_strogatz.ml: Hashtbl Sf_graph Sf_prng
