lib/gen/barabasi_albert.mli: Sf_graph Sf_prng
