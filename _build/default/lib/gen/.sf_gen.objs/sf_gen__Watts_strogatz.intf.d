lib/gen/watts_strogatz.mli: Sf_graph Sf_prng
