lib/gen/kleinberg.mli: Sf_graph Sf_prng
