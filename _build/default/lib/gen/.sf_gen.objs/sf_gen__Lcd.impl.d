lib/gen/lcd.ml: Mori Sf_graph Sf_prng
