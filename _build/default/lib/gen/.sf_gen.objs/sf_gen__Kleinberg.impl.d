lib/gen/kleinberg.ml: Array Sf_graph Sf_prng
