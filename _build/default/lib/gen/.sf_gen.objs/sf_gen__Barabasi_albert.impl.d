lib/gen/barabasi_albert.ml: Sf_graph Sf_prng
