lib/gen/cooper_frieze.mli: Sf_graph Sf_prng
