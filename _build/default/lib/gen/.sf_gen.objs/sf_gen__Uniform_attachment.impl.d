lib/gen/uniform_attachment.ml: Sf_graph Sf_prng
