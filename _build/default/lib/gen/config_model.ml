module Rng = Sf_prng.Rng
module Digraph = Sf_graph.Digraph

let of_degree_sequence rng deg =
  let n = Array.length deg in
  Array.iter (fun d -> if d < 0 then invalid_arg "Config_model: negative degree") deg;
  let total = Array.fold_left ( + ) 0 deg in
  if total mod 2 <> 0 then invalid_arg "Config_model: degree sum must be even";
  (* One stub per half-edge; a uniform shuffle then pairing adjacent
     stubs is a uniform perfect matching. *)
  let stubs = Array.make total 0 in
  let idx = ref 0 in
  Array.iteri
    (fun i d ->
      for _ = 1 to d do
        stubs.(!idx) <- i + 1;
        incr idx
      done)
    deg;
  Sf_prng.Shuffle.in_place rng stubs;
  let g = Digraph.create ~expected_vertices:n () in
  Digraph.add_vertices g n;
  let i = ref 0 in
  while !i + 1 < total do
    ignore (Digraph.add_edge g ~src:stubs.(!i) ~dst:stubs.(!i + 1));
    i := !i + 2
  done;
  g

let natural_cutoff ~n ~exponent =
  let c = int_of_float (float_of_int n ** (1. /. (exponent -. 1.))) in
  max 1 (min c (n - 1))

let power_law_degrees rng ~n ~exponent ~d_min ?d_max () =
  if n < 1 then invalid_arg "Config_model.power_law_degrees: need n >= 1";
  if d_min < 1 then invalid_arg "Config_model.power_law_degrees: need d_min >= 1";
  let d_max = match d_max with Some d -> d | None -> max d_min (natural_cutoff ~n ~exponent) in
  if d_max < d_min then invalid_arg "Config_model.power_law_degrees: d_max < d_min";
  let deg = Sf_prng.Dist.discrete_power_law_sequence rng ~exponent ~d_min ~d_max ~n in
  let total = Array.fold_left ( + ) 0 deg in
  if total mod 2 <> 0 then begin
    let v = Rng.int rng n in
    deg.(v) <- deg.(v) + 1
  end;
  deg

let power_law rng ~n ~exponent ?(d_min = 1) ?d_max () =
  of_degree_sequence rng (power_law_degrees rng ~n ~exponent ~d_min ?d_max ())

let simple_graph g =
  let n = Digraph.n_vertices g in
  let seen = Hashtbl.create (Digraph.n_edges g) in
  let g' = Digraph.create ~expected_vertices:n () in
  Digraph.add_vertices g' n;
  Digraph.iter_edges g (fun e ->
      let s = e.Digraph.src and d = e.Digraph.dst in
      if s <> d then begin
        let key = (min s d, max s d) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          ignore (Digraph.add_edge g' ~src:s ~dst:d)
        end
      end);
  g'

let searchable_power_law rng ~n ~exponent ?(d_min = 2) ?d_max () =
  let g = power_law rng ~n ~exponent ~d_min ?d_max () in
  fst (Sf_graph.Subgraph.largest_component (simple_graph g))
