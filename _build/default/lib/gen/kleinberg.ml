module Rng = Sf_prng.Rng
module Digraph = Sf_graph.Digraph

type t = { graph : Digraph.t; side : int; r : float }

let vertex_of_coord ~side ~row ~col =
  let wrap x = ((x mod side) + side) mod side in
  (wrap row * side) + wrap col + 1

let coord_of_vertex ~side v = ((v - 1) / side, (v - 1) mod side)

let lattice_distance ~side u v =
  let ru, cu = coord_of_vertex ~side u and rv, cv = coord_of_vertex ~side v in
  let axis a b =
    let d = abs (a - b) in
    min d (side - d)
  in
  axis ru rv + axis cu cv

(* Offsets (dr, dc) grouped by toroidal distance, packed as dr*side+dc. *)
let offsets_by_distance side =
  let max_d = 2 * (side / 2) in
  let groups = Array.make (max_d + 1) [] in
  for dr = 0 to side - 1 do
    for dc = 0 to side - 1 do
      if dr <> 0 || dc <> 0 then begin
        let d = min dr (side - dr) + min dc (side - dc) in
        groups.(d) <- ((dr * side) + dc) :: groups.(d)
      end
    done
  done;
  Array.map Array.of_list groups

let generate rng ~side ~r ?(q = 1) () =
  if side < 2 then invalid_arg "Kleinberg.generate: need side >= 2";
  if r < 0. then invalid_arg "Kleinberg.generate: need r >= 0";
  if q < 0 then invalid_arg "Kleinberg.generate: need q >= 0";
  let n = side * side in
  let g = Digraph.create ~expected_vertices:n () in
  Digraph.add_vertices g n;
  (* Short-range lattice edges: right and down from each vertex covers
     every adjacent pair once. *)
  for row = 0 to side - 1 do
    for col = 0 to side - 1 do
      let v = vertex_of_coord ~side ~row ~col in
      ignore (Digraph.add_edge g ~src:v ~dst:(vertex_of_coord ~side ~row ~col:(col + 1)));
      ignore (Digraph.add_edge g ~src:v ~dst:(vertex_of_coord ~side ~row:(row + 1) ~col))
    done
  done;
  if q > 0 then begin
    let groups = offsets_by_distance side in
    let weights =
      Array.mapi
        (fun d offs ->
          if d = 0 then 0.
          else float_of_int (Array.length offs) *. (float_of_int d ** -.r))
        groups
    in
    let dist_sampler = Sf_prng.Discrete.Alias.create weights in
    for row = 0 to side - 1 do
      for col = 0 to side - 1 do
        let v = vertex_of_coord ~side ~row ~col in
        for _ = 1 to q do
          let d = Sf_prng.Discrete.Alias.sample dist_sampler rng in
          let offs = groups.(d) in
          let packed = offs.(Rng.int rng (Array.length offs)) in
          let dr = packed / side and dc = packed mod side in
          let dst = vertex_of_coord ~side ~row:(row + dr) ~col:(col + dc) in
          ignore (Digraph.add_edge g ~src:v ~dst)
        done
      done
    done
  end;
  { graph = g; side; r }

let n_vertices t = Digraph.n_vertices t.graph
