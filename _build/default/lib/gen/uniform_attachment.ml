module Rng = Sf_prng.Rng
module Digraph = Sf_graph.Digraph

let tree rng ~t =
  if t < 2 then invalid_arg "Uniform_attachment.tree: need t >= 2";
  let g = Digraph.create ~expected_vertices:t () in
  Digraph.add_vertices g 2;
  ignore (Digraph.add_edge g ~src:2 ~dst:1);
  for k = 3 to t do
    let v = Digraph.add_vertex g in
    ignore (Digraph.add_edge g ~src:v ~dst:(1 + Rng.int rng (k - 1)))
  done;
  g

let graph rng ~n ~m =
  if n < 2 then invalid_arg "Uniform_attachment.graph: need n >= 2";
  if m < 1 then invalid_arg "Uniform_attachment.graph: need m >= 1";
  let g = Digraph.create ~expected_vertices:n () in
  Digraph.add_vertices g 2;
  ignore (Digraph.add_edge g ~src:2 ~dst:1);
  for k = 3 to n do
    let v = Digraph.add_vertex g in
    for _ = 1 to m do
      ignore (Digraph.add_edge g ~src:v ~dst:(1 + Rng.int rng (k - 1)))
    done
  done;
  g
