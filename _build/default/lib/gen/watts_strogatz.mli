(** The Watts–Strogatz small-world model — the third classic
    small-world construction, completing the contrast set: clustered
    like a lattice, short paths like a random graph, but with a
    {e concentrated} degree distribution (no hubs), unlike the
    scale-free models the paper studies.

    Construction: a ring of [n] vertices each joined to its [k/2]
    nearest neighbours on each side; every edge's far endpoint is then
    rewired to a uniform non-duplicate vertex with probability
    [beta]. *)

val generate :
  Sf_prng.Rng.t -> n:int -> k:int -> beta:float -> Sf_graph.Digraph.t
(** Requires [n > k >= 2], [k] even, [0 <= beta <= 1]. The result is a
    simple graph with exactly [n·k/2] edges. *)
