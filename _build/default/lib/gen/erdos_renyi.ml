module Rng = Sf_prng.Rng
module Digraph = Sf_graph.Digraph

let gnm rng ~n ~m =
  if n < 0 || m < 0 then invalid_arg "Erdos_renyi.gnm: negative parameter";
  let max_edges = n * (n - 1) / 2 in
  if m > max_edges then invalid_arg "Erdos_renyi.gnm: too many edges requested";
  let g = Digraph.create ~expected_vertices:n () in
  Digraph.add_vertices g n;
  let seen = Hashtbl.create (2 * m) in
  let added = ref 0 in
  while !added < m do
    let u = 1 + Rng.int rng n and v = 1 + Rng.int rng n in
    if u <> v then begin
      let key = (min u v, max u v) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        ignore (Digraph.add_edge g ~src:u ~dst:v);
        incr added
      end
    end
  done;
  g

let gnp rng ~n ~p =
  if n < 0 then invalid_arg "Erdos_renyi.gnp: negative n";
  if p < 0. || p > 1. then invalid_arg "Erdos_renyi.gnp: p must lie in [0, 1]";
  let g = Digraph.create ~expected_vertices:n () in
  Digraph.add_vertices g n;
  if p > 0. then begin
    (* Enumerate present pairs directly: jump over absent pairs with
       geometric gaps in the linearised pair order. *)
    let total = n * (n - 1) / 2 in
    let unrank k =
      (* Pair index k (0-based) in lexicographic (u, v) order, u < v. *)
      let rec find u acc =
        let row = n - u in
        if k < acc + row then (u, u + 1 + (k - acc)) else find (u + 1) (acc + row)
      in
      find 1 0
    in
    let pos = ref (if p >= 1. then 0 else Sf_prng.Dist.geometric rng ~p) in
    while !pos < total do
      let u, v = unrank !pos in
      ignore (Digraph.add_edge g ~src:u ~dst:v);
      pos := !pos + 1 + (if p >= 1. then 0 else Sf_prng.Dist.geometric rng ~p)
    done
  end;
  g
