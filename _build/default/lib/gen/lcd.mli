(** The Bollobás–Riordan LCD model [BR03] — the mathematically precise
    Barabási–Albert formalisation the paper cites.

    For m = 1: vertex [t] attaches to vertex [u ≤ t] with probability
    [deg(u) / (2t − 1)] for [u < t] and [1 / (2t − 1)] for the
    self-loop (the edge being added counts its own first endpoint).
    For m > 1: run the m = 1 process to [n·m] vertices and contract
    consecutive blocks of [m] (exactly the construction this library
    also uses for the merged Móri graph).

    Why it is here: the paper's concluding remark observes that for
    preferential attachment by {e total} degree — BA/LCD — the maximum
    degree grows like [t^{1/2}], which is {e not} significantly smaller
    than [n^{1/2}], so the strong-model corollary becomes trivial for
    these models. Experiment T16 measures exactly that. *)

val tree1 : Sf_prng.Rng.t -> t:int -> Sf_graph.Digraph.t
(** The m = 1 LCD process on [1..t]; vertex 1's edge is always a
    self-loop. Requires [t >= 1]. *)

val generate : Sf_prng.Rng.t -> n:int -> m:int -> Sf_graph.Digraph.t
(** LCD graph with parameter [m] on [n] vertices. *)

val max_degree_exponent : float
(** [1/2]: the growth exponent of the maximum degree — at the critical
    boundary where the paper's strong-model bound loses its content. *)
