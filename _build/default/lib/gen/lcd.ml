module Rng = Sf_prng.Rng
module Digraph = Sf_graph.Digraph
module Vec = Sf_graph.Vec

let tree1 rng ~t =
  if t < 1 then invalid_arg "Lcd.tree1: need t >= 1";
  let g = Digraph.create ~expected_vertices:t () in
  (* [ends] lists one entry per edge endpoint; when vertex k chooses,
     its own fresh out-endpoint is already in the list, realising the
     1/(2k-1) self-loop probability of the LCD convention. *)
  let ends = Vec.create ~capacity:(2 * t) () in
  for _ = 1 to t do
    let v = Digraph.add_vertex g in
    Vec.push ends v;
    let target = Vec.get ends (Rng.int rng (Vec.length ends)) in
    ignore (Digraph.add_edge g ~src:v ~dst:target);
    Vec.push ends target
  done;
  g

let generate rng ~n ~m =
  if n < 1 then invalid_arg "Lcd.generate: need n >= 1";
  if m < 1 then invalid_arg "Lcd.generate: need m >= 1";
  Mori.merge ~m (tree1 rng ~t:(n * m))

let max_degree_exponent = 0.5
