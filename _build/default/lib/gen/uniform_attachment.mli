(** Uniform-attachment recursive trees and graphs — the [p -> 0] end of
    the uniform/preferential spectrum and a degree-law control (its
    indegree tail is geometric, not a power law). *)

val tree : Sf_prng.Rng.t -> t:int -> Sf_graph.Digraph.t
(** Random recursive tree on [1..t]: vertex [k >= 2] attaches to a
    uniform vertex of [1..k-1]. Edge ids are insertion timestamps.
    @raise Invalid_argument unless [t >= 2]. *)

val graph : Sf_prng.Rng.t -> n:int -> m:int -> Sf_graph.Digraph.t
(** Each arriving vertex sends [m] out-edges to independently uniform
    older vertices (repeats allowed). Seed: vertices 1, 2 and one
    edge. *)
