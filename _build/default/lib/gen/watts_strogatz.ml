module Rng = Sf_prng.Rng
module Digraph = Sf_graph.Digraph

let generate rng ~n ~k ~beta =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Watts_strogatz.generate: k must be even and >= 2";
  if n <= k then invalid_arg "Watts_strogatz.generate: need n > k";
  if beta < 0. || beta > 1. then invalid_arg "Watts_strogatz.generate: beta outside [0, 1]";
  let g = Digraph.create ~expected_vertices:n () in
  Digraph.add_vertices g n;
  (* adjacency set to keep the rewired graph simple *)
  let present = Hashtbl.create (2 * n * k) in
  let key u v = (min u v, max u v) in
  let add u v =
    Hashtbl.replace present (key u v) ();
    ignore (Digraph.add_edge g ~src:u ~dst:v)
  in
  let mem u v = Hashtbl.mem present (key u v) in
  (* ring lattice: j-th neighbour clockwise for j = 1..k/2 *)
  for v = 1 to n do
    for j = 1 to k / 2 do
      let u = ((v - 1 + j) mod n) + 1 in
      let src, dst =
        if Rng.bernoulli rng beta then begin
          (* rewire the far endpoint to a fresh uniform vertex *)
          let rec draw () =
            let w = 1 + Rng.int rng n in
            if w = v || mem v w then draw () else w
          in
          (v, draw ())
        end
        else (v, u)
      in
      if not (mem src dst) then add src dst
      else begin
        (* the lattice edge already exists (can only happen after a
           rewire landed on it); fall back to a fresh endpoint so the
           edge count stays exactly nk/2 *)
        let rec draw () =
          let w = 1 + Rng.int rng n in
          if w = v || mem v w then draw () else w
        in
        add v (draw ())
      end
    done
  done;
  g
