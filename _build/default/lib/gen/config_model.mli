(** The Molloy–Reed configuration model: "pure" random graphs with a
    prescribed degree sequence.

    This is the random-graph world of Adamic et al. [ALPH01], which the
    paper contrasts with evolving models: neighbours' degrees are
    independent here, so mean-field analyses of search are valid — and
    high-degree-seeking strategies provably help. We reproduce their
    setting with power-law degree sequences of exponent [2 < k < 3].

    Construction: each vertex receives as many {e stubs} as its degree;
    a uniform perfect matching of the stubs becomes the edge set. Self-
    loops and parallel edges occur (vanishing fraction) and are kept;
    [simple_graph] erases them when a simple graph is wanted. Edges are
    oriented arbitrarily (stub order); searching uses the undirected
    view as always. *)

val of_degree_sequence : Sf_prng.Rng.t -> int array -> Sf_graph.Digraph.t
(** [of_degree_sequence rng deg] builds a uniform configuration-model
    multigraph where vertex [v] has total degree [deg.(v-1)].
    @raise Invalid_argument if any degree is negative or the sum is
    odd. *)

val power_law_degrees :
  Sf_prng.Rng.t -> n:int -> exponent:float -> d_min:int -> ?d_max:int -> unit -> int array
(** I.i.d. degrees with [P(d) ∝ d^-exponent] on [d_min .. d_max]
    ([d_max] defaults to the natural cutoff [n^(1/(exponent-1))],
    capped at [n-1]); if the sum comes out odd, one uniformly chosen
    vertex gets one extra stub. *)

val power_law :
  Sf_prng.Rng.t -> n:int -> exponent:float -> ?d_min:int -> ?d_max:int -> unit -> Sf_graph.Digraph.t
(** Configuration-model graph over {!power_law_degrees}
    ([d_min] defaults to 1). *)

val simple_graph : Sf_graph.Digraph.t -> Sf_graph.Digraph.t
(** Copy with self-loops removed and parallel edges collapsed (first
    occurrence kept). Degree sequence changes accordingly. *)

val searchable_power_law :
  Sf_prng.Rng.t -> n:int -> exponent:float -> ?d_min:int -> ?d_max:int -> unit
  -> Sf_graph.Digraph.t
(** The graph the search experiments use: largest connected component
    of a power-law configuration graph, relabelled [1..n']. With
    [d_min >= 2] the giant component covers almost all vertices. *)
