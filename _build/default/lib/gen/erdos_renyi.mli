(** Erdős–Rényi random graphs, the classical control with Poisson-like
    degrees (no hubs, no power law). *)

val gnm : Sf_prng.Rng.t -> n:int -> m:int -> Sf_graph.Digraph.t
(** Uniform simple graph with exactly [m] distinct undirected edges
    (no self-loops); orientation is the sampling order.
    @raise Invalid_argument if [m] exceeds [n(n-1)/2]. *)

val gnp : Sf_prng.Rng.t -> n:int -> p:float -> Sf_graph.Digraph.t
(** Each unordered pair independently present with probability [p];
    sampled in expected O(n + m) time by geometric skipping. *)
