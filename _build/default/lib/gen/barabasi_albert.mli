(** The Barabási–Albert preferential-attachment model (classic
    total-degree variant), used as the [p = 1] reference point and for
    the degree-law and max-degree comparisons.

    Growth: start from a small seed; each arriving vertex sends [m]
    out-edges, each to an existing vertex chosen with probability
    proportional to its {e total} degree (loop counts twice). The [m]
    choices are made sequentially, degrees updating as edges land
    (Bollobás–Riordan convention); parallel edges are allowed and kept.

    This differs from {!Mori} in two deliberate ways, both discussed in
    the paper: preference is by total degree (not indegree), and
    multiple edges per step are native (not obtained by merging). *)

val generate : Sf_prng.Rng.t -> n:int -> m:int -> Sf_graph.Digraph.t
(** [generate rng ~n ~m] grows the BA graph to [n] vertices with [m]
    edges per arrival. The seed is vertices [1, 2] joined by an edge.
    @raise Invalid_argument unless [n >= 2] and [m >= 1]. *)

val degree_exponent : float
(** The BA degree-distribution exponent, 3. *)
