(** Kleinberg's small-world lattice model [Kle00] — the {e navigable}
    counterpoint the paper measures the scale-free models against.

    Vertices tile a [side × side] torus; each vertex is joined to its
    four lattice neighbours (short-range) and sends [q] extra directed
    long-range edges, the endpoint at lattice distance [d] being chosen
    with probability proportional to [d^-r]. Kleinberg's theorem: with
    [r = 2] greedy geographic routing reaches any target in O(log² n)
    expected steps; for [r <> 2] every decentralised algorithm needs a
    polynomial number of steps. The degree distribution is tightly
    concentrated — this model is navigable but {e not} scale-free,
    which is exactly the gap the paper addresses. *)

type t = {
  graph : Sf_graph.Digraph.t;
  side : int;
  r : float;
}

val generate : Sf_prng.Rng.t -> side:int -> r:float -> ?q:int -> unit -> t
(** [generate rng ~side ~r ~q ()] with [q] long-range links per vertex
    (default 1). Requires [side >= 2], [r >= 0]. Long-range sampling is
    exact: distances are drawn from the precomputed toroidal
    distance-mass table, then a uniform offset at that distance. *)

val vertex_of_coord : side:int -> row:int -> col:int -> int
(** Row-major, wrapping coordinates; result in [1 .. side²]. *)

val coord_of_vertex : side:int -> int -> int * int

val lattice_distance : side:int -> int -> int -> int
(** Toroidal Manhattan distance between two vertex ids. *)

val n_vertices : t -> int
