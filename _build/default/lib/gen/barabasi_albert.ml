module Rng = Sf_prng.Rng
module Digraph = Sf_graph.Digraph
module Vec = Sf_graph.Vec

let generate rng ~n ~m =
  if n < 2 then invalid_arg "Barabasi_albert.generate: need n >= 2";
  if m < 1 then invalid_arg "Barabasi_albert.generate: need m >= 1";
  let g = Digraph.create ~expected_vertices:n () in
  Digraph.add_vertices g 2;
  ignore (Digraph.add_edge g ~src:2 ~dst:1);
  (* [ends] holds every edge endpoint; a uniform entry is a vertex drawn
     proportionally to total degree. *)
  let ends = Vec.create ~capacity:(2 * n * m) () in
  Vec.push ends 2;
  Vec.push ends 1;
  for _ = 3 to n do
    let v = Digraph.add_vertex g in
    for _ = 1 to m do
      let target = Vec.get ends (Rng.int rng (Vec.length ends)) in
      ignore (Digraph.add_edge g ~src:v ~dst:target);
      Vec.push ends v;
      Vec.push ends target
    done
  done;
  g

let degree_exponent = 3.
