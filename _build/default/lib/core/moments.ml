let check_p p name = if p <= 0. || p > 1. then invalid_arg ("Moments." ^ name ^ ": need 0 < p <= 1")

let total_weight ~p ~t =
  check_p p "total_weight";
  if t < 3 then invalid_arg "Moments.total_weight: need t >= 3";
  (p *. float_of_int (t - 2)) +. ((1. -. p) *. float_of_int (t - 1))

let expected_indegree ~p ~v ~t =
  check_p p "expected_indegree";
  if v < 1 || t < 2 || v > t then invalid_arg "Moments.expected_indegree: need 1 <= v <= t";
  (* state at time s: the graph G_s; vertex 1 has indegree 1 at t = 2,
     vertex 2 has 0, later vertices are born with 0 at their own time *)
  let birth = max v 2 in
  let d = ref (if v = 1 then 1. else 0.) in
  for s = birth + 1 to t do
    (* arrival of vertex s updates expectations with weight W_s *)
    let w = total_weight ~p ~t:s in
    d := !d +. (((p *. !d) +. (1. -. p)) /. w)
  done;
  !d

let expected_indegree_profile ~p ~t =
  check_p p "expected_indegree_profile";
  if t < 2 then invalid_arg "Moments.expected_indegree_profile: need t >= 2";
  (* The affine recurrence d_s = d_{s-1}·(1 + p/W_s) + (1-p)/W_s has
     the closed solution d_t = (A_t/A_b)·d_b + (1-p)·A_t·(S_t - S_b)
     with A_t = ∏_{s<=t}(1 + p/W_s) and S_t = Σ_{s<=t} 1/(A_s·W_s),
     so one O(t) pass of prefix products serves every vertex. *)
  let a = Array.make (t + 1) 1. in
  let s_sum = Array.make (t + 1) 0. in
  for s = 3 to t do
    let w = total_weight ~p ~t:s in
    a.(s) <- a.(s - 1) *. (1. +. (p /. w));
    s_sum.(s) <- s_sum.(s - 1) +. (1. /. (a.(s) *. w))
  done;
  Array.init t (fun i ->
      let v = i + 1 in
      let birth = max v 2 in
      let d_birth = if v = 1 then 1. else 0. in
      (a.(t) /. a.(birth) *. d_birth)
      +. ((1. -. p) *. a.(t) *. (s_sum.(t) -. s_sum.(birth))))

let age_degree_exponent ~p =
  check_p p "age_degree_exponent";
  p
