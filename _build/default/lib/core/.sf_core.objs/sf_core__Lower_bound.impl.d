lib/core/lower_bound.ml: Array Events Hashtbl List Sf_gen Sf_graph
