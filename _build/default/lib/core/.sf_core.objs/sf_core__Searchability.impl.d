lib/core/searchability.ml: Array Float List Lower_bound Printf Sf_gen Sf_graph Sf_prng Sf_search Sf_stats
