lib/core/rational.ml: Int64 Printf
