lib/core/max_degree.mli: Sf_prng Sf_stats
