lib/core/paper.mli:
