lib/core/equivalence.ml: Array Buffer Enumerate Events Float Fun Hashtbl List Rational Sf_gen Sf_graph Sf_prng Sf_stats
