lib/core/moments.mli:
