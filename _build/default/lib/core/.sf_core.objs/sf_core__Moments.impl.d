lib/core/moments.ml: Array
