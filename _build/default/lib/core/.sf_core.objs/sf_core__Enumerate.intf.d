lib/core/enumerate.mli: Rational Sf_graph
