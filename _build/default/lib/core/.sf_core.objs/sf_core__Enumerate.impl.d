lib/core/enumerate.ml: Array Hashtbl Int64 List Rational Sf_graph
