lib/core/rational.mli:
