lib/core/searchability.mli: Sf_gen Sf_graph Sf_prng Sf_search Sf_stats
