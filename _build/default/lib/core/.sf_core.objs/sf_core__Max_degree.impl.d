lib/core/max_degree.ml: Array Hashtbl List Sf_gen Sf_stats
