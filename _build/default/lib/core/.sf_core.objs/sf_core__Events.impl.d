lib/core/events.ml: Sf_gen Sf_graph
