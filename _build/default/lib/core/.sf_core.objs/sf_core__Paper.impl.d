lib/core/paper.ml: Buffer Equivalence Events Float List Lower_bound Max_degree Printf Searchability Sf_gen Sf_graph Sf_prng Sf_search Sf_stats String
