lib/core/equivalence.mli: Rational Sf_graph Sf_prng
