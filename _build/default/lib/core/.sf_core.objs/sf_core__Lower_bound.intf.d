lib/core/lower_bound.mli: Sf_gen Sf_graph Sf_prng
