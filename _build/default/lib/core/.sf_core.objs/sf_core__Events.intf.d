lib/core/events.mli: Sf_graph Sf_prng
