(** Móri's maximum-degree law: in the Móri tree the maximum (in)degree
    grows like [t^p] (Móri 2005). This is the premise of Theorem 1's
    strong-model half — the strong→weak simulation loses a factor of
    at most the maximum degree, so a [t^p]-ish max degree turns the
    weak √n bound into [n^(1/2 - p - ε)]. *)

val predicted_exponent : p:float -> float
(** [p] itself. *)

val max_indegree_series :
  Sf_prng.Rng.t -> p:float -> checkpoints:int list -> (int * int) list
(** Grow one Móri tree to the largest checkpoint and report
    [(t, max indegree of G_t)] at each checkpoint — a single
    trajectory of the max-degree process. Checkpoints must all be
    [>= 2]. *)

val mean_max_indegree :
  Sf_prng.Rng.t -> p:float -> checkpoints:int list -> trials:int -> (int * float) list
(** Average of {!max_indegree_series} over independent trees. *)

val fit_exponent : (int * float) list -> Sf_stats.Regression.fit
(** Log–log fit of max degree against [t]; [fit.slope ≈ p] is the
    law's prediction. *)
