let predicted_exponent ~p =
  if p <= 0. || p > 1. then invalid_arg "Max_degree.predicted_exponent: need 0 < p <= 1";
  p

let max_indegree_series rng ~p ~checkpoints =
  if checkpoints = [] then invalid_arg "Max_degree.max_indegree_series: no checkpoints";
  List.iter
    (fun t -> if t < 2 then invalid_arg "Max_degree.max_indegree_series: checkpoint < 2")
    checkpoints;
  let t_max = List.fold_left max 2 checkpoints in
  let g = Sf_gen.Mori.tree rng ~p ~t:t_max in
  let fathers = Sf_gen.Mori.fathers g in
  (* Replay the attachment sequence, tracking the running maximum
     indegree; the max at time t covers fathers of vertices 2..t. *)
  let indeg = Array.make t_max 0 in
  let running_max = Array.make (t_max + 1) 0 in
  let current = ref 0 in
  for k = 2 to t_max do
    let f = fathers.(k - 2) in
    indeg.(f - 1) <- indeg.(f - 1) + 1;
    if indeg.(f - 1) > !current then current := indeg.(f - 1);
    running_max.(k) <- !current
  done;
  List.map (fun t -> (t, running_max.(t))) checkpoints

let mean_max_indegree rng ~p ~checkpoints ~trials =
  if trials < 1 then invalid_arg "Max_degree.mean_max_indegree: need trials >= 1";
  let sums = Hashtbl.create 16 in
  for _ = 1 to trials do
    List.iter
      (fun (t, m) ->
        let prev = try Hashtbl.find sums t with Not_found -> 0 in
        Hashtbl.replace sums t (prev + m))
      (max_indegree_series rng ~p ~checkpoints)
  done;
  List.map
    (fun t -> (t, float_of_int (Hashtbl.find sums t) /. float_of_int trials))
    (List.sort_uniq compare checkpoints)

let fit_exponent points =
  Sf_stats.Regression.log_log
    (List.map (fun (t, m) -> (float_of_int t, m)) points)
