module Digraph = Sf_graph.Digraph

let lemma1 ~set_size ~event_prob =
  if set_size < 0 then invalid_arg "Lower_bound.lemma1: negative set size";
  if event_prob < 0. || event_prob > 1. then
    invalid_arg "Lower_bound.lemma1: event_prob outside [0, 1]";
  float_of_int set_size *. event_prob /. 2.

type bound = {
  n : int;
  m : int;
  p : float;
  a : int;
  b : int;
  graph_size : int;
  set_size : int;
  event_prob : float;
  requests : float;
}

let theorem1 ~p ~m ~n =
  if n < 3 then invalid_arg "Lower_bound.theorem1: need n >= 3";
  if m < 1 then invalid_arg "Lower_bound.theorem1: need m >= 1";
  let a = n - 1 in
  let a_tree = a * m in
  let w = max 1 (int_of_float (sqrt (float_of_int (a_tree - 1))) / m) in
  let b_tree = a_tree + (w * m) in
  (* E asks every tree vertex of the window's blocks to attach inside
     the core [1, a·m]; then the w merged blocks are interchangeable. *)
  let event_prob = Events.prob_exact ~p ~a:a_tree ~b:b_tree in
  {
    n;
    m;
    p;
    a;
    b = a + w;
    graph_size = a + w;
    set_size = w;
    event_prob;
    requests = lemma1 ~set_size:w ~event_prob;
  }

type window_choice = { width : int; event_prob : float; requests : float }

let window_tradeoff ~p ~a ~widths =
  List.map
    (fun w ->
      if w < 0 then invalid_arg "Lower_bound.window_tradeoff: negative width";
      let event_prob = Events.prob_exact ~p ~a ~b:(a + w) in
      { width = w; event_prob; requests = lemma1 ~set_size:w ~event_prob })
    widths

let optimal_window ~p ~a ?max_width () =
  if a < 2 then invalid_arg "Lower_bound.optimal_window: need a >= 2";
  let max_width =
    match max_width with
    | Some w -> w
    | None -> max 4 (8 * int_of_float (sqrt (float_of_int a)))
  in
  (* incremental product over the step probabilities: O(max_width) *)
  let best = ref { width = 0; event_prob = 1.; requests = 0. } in
  let prob = ref 1. in
  for w = 1 to max_width do
    prob := !prob *. Events.step_prob ~p ~a ~k:(a + w);
    let requests = float_of_int w *. !prob /. 2. in
    if requests > !best.requests then
      best := { width = w; event_prob = !prob; requests }
  done;
  !best

let asymptotic_theorem1 ~p ~n =
  if n < 1 then invalid_arg "Lower_bound.asymptotic_theorem1: need n >= 1";
  sqrt (float_of_int n) *. Events.lemma3_bound ~p /. 2.

let strong_model_exponent ~p =
  if p <= 0. || p > 1. then invalid_arg "Lower_bound.strong_model_exponent: need 0 < p <= 1";
  0.5 -. p

let cf_event_holds g ~arrival ~n ~window =
  if window < 1 || window >= n then invalid_arg "Lower_bound.cf_event_holds: bad window";
  if Digraph.n_vertices g < n then invalid_arg "Lower_bound.cf_event_holds: graph too small";
  let core_top = n - window in
  let ok = ref true in
  for v = n - window + 1 to n do
    if Digraph.out_degree g v <> arrival.(v - 1) then ok := false
    else if Digraph.in_degree g v <> 0 then ok := false
    else
      Digraph.iter_out_edges g v (fun e -> if e.Digraph.dst > core_top then ok := false)
  done;
  !ok

type cf_estimate = {
  n : int;
  window : int;
  trials : int;
  event_rate : float;
  event_rate_se : float;
  mean_class_size : float;
  requests : float;
}

let largest_out_degree_class g ~n ~window =
  let counts = Hashtbl.create 8 in
  for v = n - window + 1 to n do
    let d = Digraph.out_degree g v in
    let prev = try Hashtbl.find counts d with Not_found -> 0 in
    Hashtbl.replace counts d (prev + 1)
  done;
  Hashtbl.fold (fun _ c acc -> max c acc) counts 0

let theorem2_estimate rng params ~n ?window ~trials () =
  if trials < 1 then invalid_arg "Lower_bound.theorem2_estimate: need trials >= 1";
  let window =
    match window with
    | Some w -> w
    | None -> max 1 (int_of_float (sqrt (float_of_int n)))
  in
  let hits = ref 0 and class_sum = ref 0 in
  for _ = 1 to trials do
    let g, arrival = Sf_gen.Cooper_frieze.generate_n_vertices_traced rng params ~n in
    if cf_event_holds g ~arrival ~n ~window then begin
      incr hits;
      class_sum := !class_sum + largest_out_degree_class g ~n ~window
    end
  done;
  let ft = float_of_int trials in
  let event_rate = float_of_int !hits /. ft in
  {
    n;
    window;
    trials;
    event_rate;
    event_rate_se = sqrt (event_rate *. (1. -. event_rate) /. ft);
    mean_class_size =
      (if !hits = 0 then 0. else float_of_int !class_sum /. float_of_int !hits);
    (* E[1_E · class]/2: the Lemma 1 shape with the class standing in
       for |V|. *)
    requests = float_of_int !class_sum /. ft /. 2.;
  }
