module Digraph = Sf_graph.Digraph
module Permute = Sf_graph.Permute
module Rng = Sf_prng.Rng

type exact_report = {
  a : int;
  b : int;
  t : int;
  n_outcomes : int;
  event_prob : float;
  permutations_checked : int;
  max_discrepancy : float;
}

let check_window ~t ~a ~b name =
  if a < 2 || b < a || b > t then invalid_arg ("Equivalence." ^ name ^ ": need 2 <= a <= b <= t")

let distribution_distance dist1 dist2 =
  (* Max pointwise gap between two (key, prob) association lists. *)
  let tbl = Hashtbl.create 256 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) dist1;
  let worst = ref 0. in
  List.iter
    (fun (k, v2) ->
      let v1 = try Hashtbl.find tbl k with Not_found -> 0. in
      worst := Float.max !worst (Float.abs (v1 -. v2));
      Hashtbl.remove tbl k)
    dist2;
  Hashtbl.iter (fun _ v1 -> worst := Float.max !worst v1) tbl;
  !worst

let exact ~p ~t ~a ~b =
  check_window ~t ~a ~b "exact";
  let condition g = Events.holds g ~a ~b in
  (* Collect every conditioned outcome once; each is tiny (t <= 12). *)
  let outcomes =
    Enumerate.fold ~p ~t ~init:[] ~f:(fun acc ~prob ~fathers ->
        let g = Enumerate.graph_of_fathers fathers in
        if condition g then (g, prob) :: acc else acc)
  in
  let event_prob = List.fold_left (fun acc (_, pr) -> acc +. pr) 0. outcomes in
  let law transform =
    let tbl = Hashtbl.create 256 in
    List.iter
      (fun (g, prob) ->
        let key = Digraph.canonical_key (transform g) in
        let prev = try Hashtbl.find tbl key with Not_found -> 0. in
        Hashtbl.replace tbl key (prev +. (prob /. event_prob)))
      outcomes;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  in
  let base = law Fun.id in
  let permutations = ref 0 and worst = ref 0. in
  for u = a + 1 to b do
    for v = u + 1 to b do
      incr permutations;
      let sigma = Permute.transposition t u v in
      let pushed = law (Permute.apply sigma) in
      worst := Float.max !worst (distribution_distance base pushed)
    done
  done;
  {
    a;
    b;
    t;
    n_outcomes = Enumerate.n_outcomes ~t;
    event_prob;
    permutations_checked = !permutations;
    max_discrepancy = !worst;
  }

type rational_report = {
  equal : bool;
  event_prob : Rational.t;
  outcomes_conditioned : int;
  permutations_checked : int;
}

let exact_rational ~p_num ~p_den ~t ~a ~b =
  check_window ~t ~a ~b "exact_rational";
  let condition g = Events.holds g ~a ~b in
  let outcomes =
    Enumerate.fold_rational ~p_num ~p_den ~t ~init:[] ~f:(fun acc ~prob ~fathers ->
        let g = Enumerate.graph_of_fathers fathers in
        if condition g then (g, prob) :: acc else acc)
  in
  let event_prob =
    List.fold_left (fun acc (_, pr) -> Rational.add acc pr) Rational.zero outcomes
  in
  (* conditional law as an exact, key-sorted association list; no
     normalisation needed for the comparison — equal unnormalised
     measures have equal conditionals *)
  let law transform =
    let tbl = Hashtbl.create 256 in
    List.iter
      (fun (g, prob) ->
        let key = Digraph.canonical_key (transform g) in
        let prev = try Hashtbl.find tbl key with Not_found -> Rational.zero in
        Hashtbl.replace tbl key (Rational.add prev prob))
      outcomes;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
  in
  let base = law Fun.id in
  let permutations = ref 0 in
  let equal = ref true in
  for u = a + 1 to b do
    for v = u + 1 to b do
      incr permutations;
      let sigma = Permute.transposition t u v in
      let pushed = law (Permute.apply sigma) in
      let same =
        List.length base = List.length pushed
        && List.for_all2
             (fun (k1, p1) (k2, p2) -> k1 = k2 && Rational.equal p1 p2)
             base pushed
      in
      if not same then equal := false
    done
  done;
  {
    equal = !equal;
    event_prob;
    outcomes_conditioned = List.length outcomes;
    permutations_checked = !permutations;
  }

type mc_report = {
  trials : int;
  chi_square : float;
  dof : int;
  p_value : float;
  tv_distance : float;
}

let window_statistic g ~a ~b =
  (* A fixed (graph-independent choice of slots, capped labels)
     projection of the window: coarse enough that a chi-square with a
     few thousand samples has populated categories, fine enough to
     expose non-exchangeability. For windows wider than four, only the
     first, middle and last slots are read — a permutation moving any
     of those shifts the slot laws if the vertices are
     distinguishable. *)
  let slots =
    let w = b - a in
    if w <= 4 then List.init w (fun i -> a + 1 + i)
    else [ a + 1; a + 1 + (w / 2); b ]
  in
  let buf = Buffer.create 32 in
  List.iter
    (fun v ->
      let indeg = Digraph.in_degree g v in
      let indeg_label = if indeg >= 5 then "5+" else string_of_int indeg in
      let father = Sf_gen.Mori.father g v in
      let father_label =
        if father > a then "w" (* inside the window: only without conditioning *)
        else if father <= 3 then string_of_int father
        else "o"
      in
      Buffer.add_string buf indeg_label;
      Buffer.add_char buf ':';
      Buffer.add_string buf father_label;
      Buffer.add_char buf ';')
    slots;
  Buffer.contents buf

let counts_of samples =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun s ->
      let prev = try Hashtbl.find tbl s with Not_found -> 0 in
      Hashtbl.replace tbl s (prev + 1))
    samples;
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []

let monte_carlo rng ~p ~t ~a ~b ~trials ~sigma ~conditioned =
  check_window ~t ~a ~b "monte_carlo";
  if Array.length sigma <> t then invalid_arg "Equivalence.monte_carlo: sigma size mismatch";
  Array.iteri
    (fun i img ->
      let v = i + 1 in
      if img <> v && not (v > a && v <= b) then
        invalid_arg "Equivalence.monte_carlo: sigma moves vertices outside the window")
    sigma;
  let sample () =
    if conditioned then Sf_gen.Mori.tree_conditioned rng ~p ~t ~a ~b
    else Sf_gen.Mori.tree rng ~p ~t
  in
  let side1 = List.init trials (fun _ -> window_statistic (sample ()) ~a ~b) in
  let side2 =
    List.init trials (fun _ ->
        window_statistic (Permute.apply sigma (sample ())) ~a ~b)
  in
  let c1 = counts_of side1 and c2 = counts_of side2 in
  let chi_square, dof, p_value = Sf_stats.Tests.chi_square_two_sample c1 c2 in
  { trials; chi_square; dof; p_value; tv_distance = Sf_stats.Tests.total_variation c1 c2 }

let random_window_sigma rng ~t ~a ~b =
  if b <= a then invalid_arg "Equivalence.random_window_sigma: need b > a";
  let rec draw () =
    let sigma = Permute.random_of_subrange rng ~n:t ~lo:(a + 1) ~hi:b in
    if sigma = Permute.identity t then draw () else sigma
  in
  draw ()
