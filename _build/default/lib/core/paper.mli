(** The paper, statement by statement, as runnable checks.

    Each entry quotes one claim of Duchon–Eggemann–Hanusse (2007),
    says how this repository verifies it, and carries a fast
    self-check (seconds, not minutes — the full-scale versions live in
    the experiment registry). [sfexp verify] and the bench harness
    print the resulting certificate. *)

type rigor =
  | Exact  (** verified by exact computation (enumeration/rationals) *)
  | Statistical  (** verified by calibrated statistical tests *)
  | Empirical  (** reproduced by measurement at laptop scale *)

type statement = {
  id : string; (** e.g. "Lemma 3" *)
  claim : string; (** the paper's assertion, paraphrased *)
  method_ : string; (** how this repository checks it *)
  rigor : rigor;
  experiments : string list; (** related experiment ids *)
  check : seed:int -> (string * bool) list;
      (** named sub-checks; all true = statement verified here *)
}

val statements : statement list
(** Theorem 1 (weak, merged, strong), Theorem 2, Lemmas 1–3, and the
    two background laws the proofs use (max degree, degree power
    law). *)

type report = { statement : statement; results : (string * bool) list }

val verify : seed:int -> report list

val all_pass : report list -> bool

val render : report list -> string
(** Human-readable certificate. *)
