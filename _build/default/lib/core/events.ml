let window_end ~a =
  if a < 2 then invalid_arg "Events.window_end: need a >= 2";
  a + int_of_float (sqrt (float_of_int (a - 1)))

let step_prob ~p ~a ~k =
  if a < 2 || k <= a then invalid_arg "Events.step_prob: need 2 <= a < k";
  if p <= 0. || p > 1. then invalid_arg "Events.step_prob: need 0 < p <= 1";
  let fk = float_of_int k and fa = float_of_int a in
  (p *. (fk -. 2.)) +. ((1. -. p) *. fa)
  |> fun num -> num /. ((p *. (fk -. 2.)) +. ((1. -. p) *. (fk -. 1.)))

let prob_exact ~p ~a ~b =
  if a < 2 || b < a then invalid_arg "Events.prob_exact: need 2 <= a <= b";
  let log_sum = ref 0. in
  for k = a + 1 to b do
    log_sum := !log_sum +. log (step_prob ~p ~a ~k)
  done;
  exp !log_sum

let lemma3_bound ~p =
  if p <= 0. || p > 1. then invalid_arg "Events.lemma3_bound: need 0 < p <= 1";
  exp (-.(1. -. p))

let holds g ~a ~b =
  if a < 2 || b < a || b > Sf_graph.Digraph.n_vertices g then
    invalid_arg "Events.holds: bad window";
  let ok = ref true in
  for k = a + 1 to b do
    if Sf_gen.Mori.father g k > a then ok := false
  done;
  !ok

let prob_monte_carlo rng ~p ~a ~b ~trials =
  if trials < 1 then invalid_arg "Events.prob_monte_carlo: need trials >= 1";
  let hits = ref 0 in
  for _ = 1 to trials do
    let g = Sf_gen.Mori.tree rng ~p ~t:b in
    if holds g ~a ~b then incr hits
  done;
  let est = float_of_int !hits /. float_of_int trials in
  let se = sqrt (est *. (1. -. est) /. float_of_int trials) in
  (est, se)
