type t = { num : int64; den : int64 }

exception Overflow

let rec gcd a b = if b = 0L then a else gcd b (Int64.rem a b)

let gcd a b =
  let g = gcd (Int64.abs a) (Int64.abs b) in
  if g = 0L then 1L else g

(* overflow-checked primitives *)
let checked_mul a b =
  if a = 0L || b = 0L then 0L
  else begin
    let r = Int64.mul a b in
    if Int64.div r b <> a then raise Overflow;
    r
  end

let checked_add a b =
  let r = Int64.add a b in
  (* same-sign operands must not flip sign *)
  if (a > 0L && b > 0L && r < 0L) || (a < 0L && b < 0L && r > 0L) then raise Overflow;
  r

let normalise num den =
  if den = 0L then invalid_arg "Rational: zero denominator";
  let sign = if den < 0L then -1L else 1L in
  let num = checked_mul num sign and den = checked_mul den sign in
  let g = gcd num den in
  { num = Int64.div num g; den = Int64.div den g }

let make num den = normalise num den
let of_int i = { num = Int64.of_int i; den = 1L }
let zero = { num = 0L; den = 1L }
let one = { num = 1L; den = 1L }

let num t = t.num
let den t = t.den

let mul a b =
  (* cross-reduce before multiplying to keep intermediates small *)
  let g1 = gcd a.num b.den and g2 = gcd b.num a.den in
  normalise
    (checked_mul (Int64.div a.num g1) (Int64.div b.num g2))
    (checked_mul (Int64.div a.den g2) (Int64.div b.den g1))

let add a b =
  let g = gcd a.den b.den in
  let da = Int64.div a.den g and db = Int64.div b.den g in
  normalise
    (checked_add (checked_mul a.num db) (checked_mul b.num da))
    (checked_mul a.den db)

let neg a = { a with num = Int64.neg a.num }
let sub a b = add a (neg b)

let div a b =
  if b.num = 0L then invalid_arg "Rational.div: division by zero";
  mul a { num = b.den; den = b.num }

let equal a b = a.num = b.num && a.den = b.den

let compare a b =
  (* compare via subtraction to stay exact *)
  Int64.compare (sub a b).num 0L

let to_string t = Printf.sprintf "%Ld/%Ld" t.num t.den
let to_float t = Int64.to_float t.num /. Int64.to_float t.den
