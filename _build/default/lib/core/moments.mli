(** Exact degree moments of the Móri growth process.

    The attachment rule gives a linear recurrence for the expected
    indegree of a fixed vertex: writing [W_t = p(t−2) + (1−p)(t−1)]
    for the total attachment weight when vertex [t] arrives,

    {[ E[d_{t+1}(v)] = E[d_t(v)] · (1 + p/W_{t+1}) + (1−p)/W_{t+1} ]}

    (one new arrival hits [v] with probability
    [(p·d + (1−p))/W]). Iterating from [d_s(v) = 0] at [v]'s birth
    time [s = v] gives the exact mean — no mean-field approximation —
    which grows like [(t/s)^p], the age–degree law behind the paper's
    degree distribution and max-degree facts (T8, T9) and the
    "age and degree are positively correlated" observation (T15).

    Everything here is O(t) arithmetic, validated against simulation
    in the test suite. *)

val total_weight : p:float -> t:int -> float
(** [W_t], the normalising weight at the arrival of vertex [t]
    (defined for [t >= 3]; the paper's process starts at t = 2). *)

val expected_indegree : p:float -> v:int -> t:int -> float
(** Exact [E\[indegree of v in G_t\]] for [1 <= v <= t]. Runs the
    recurrence from [v]'s birth (vertex 1 starts at time 2 with
    indegree 1). *)

val expected_indegree_profile : p:float -> t:int -> float array
(** [a.(v-1) = E[d_t(v)]] for all vertices at once, O(t). The sum of
    the profile is exactly [t - 1] (one edge per arrival). *)

val age_degree_exponent : p:float -> float
(** The growth exponent of [E[d_t(v)] ~ C·(t/v)^p]: the mean-field
    [p], which the exact recurrence approaches. *)
