module Digraph = Sf_graph.Digraph

let max_t = 12

let n_outcomes ~t =
  if t < 2 || t > max_t then invalid_arg "Enumerate.n_outcomes: need 2 <= t <= 12";
  let rec go k acc = if k > t then acc else go (k + 1) (acc * (k - 1)) in
  go 3 1

let fold ~p ~t ~init ~f =
  if t < 2 || t > max_t then invalid_arg "Enumerate.fold: need 2 <= t <= 12";
  if p <= 0. || p > 1. then invalid_arg "Enumerate.fold: need 0 < p <= 1";
  let fathers = Array.make (t - 1) 1 in
  let indeg = Array.make t 0 in
  (* Recurse over the father of vertex k, threading the exact step
     probability (p·indeg(u) + (1-p)) / (p·(k-2) + (1-p)·(k-1)). *)
  let acc = ref init in
  let rec step k prob =
    if k > t then acc := f !acc ~prob ~fathers
    else begin
      let denom =
        (p *. float_of_int (k - 2)) +. ((1. -. p) *. float_of_int (k - 1))
      in
      for u = 1 to k - 1 do
        let weight = (p *. float_of_int indeg.(u - 1)) +. (1. -. p) in
        fathers.(k - 2) <- u;
        indeg.(u - 1) <- indeg.(u - 1) + 1;
        step (k + 1) (prob *. weight /. denom);
        indeg.(u - 1) <- indeg.(u - 1) - 1
      done
    end
  in
  (* Vertex 2 always attaches to vertex 1. *)
  indeg.(0) <- 1;
  step 3 1.;
  !acc

let graph_of_fathers fathers =
  let t = Array.length fathers + 1 in
  let g = Digraph.create ~expected_vertices:t () in
  Digraph.add_vertices g t;
  Array.iteri (fun i father -> ignore (Digraph.add_edge g ~src:(i + 2) ~dst:father)) fathers;
  g

let distribution ~p ~t ?(condition = fun _ -> true) () =
  let tbl = Hashtbl.create 256 in
  let total =
    fold ~p ~t ~init:0. ~f:(fun total ~prob ~fathers ->
        let g = graph_of_fathers fathers in
        if condition g then begin
          let key = Digraph.canonical_key g in
          let prev = try Hashtbl.find tbl key with Not_found -> 0. in
          Hashtbl.replace tbl key (prev +. prob);
          total +. prob
        end
        else total)
  in
  if total <= 0. then []
  else
    Hashtbl.fold (fun key prob acc -> (key, prob /. total) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

let fold_rational ~p_num ~p_den ~t ~init ~f =
  if t < 2 || t > max_t then invalid_arg "Enumerate.fold_rational: need 2 <= t <= 12";
  if p_num <= 0 || p_den < p_num then
    invalid_arg "Enumerate.fold_rational: need 0 < p_num <= p_den";
  let c = p_num and d = p_den in
  let fathers = Array.make (t - 1) 1 in
  let indeg = Array.make t 0 in
  let acc = ref init in
  let rec step k prob =
    if k > t then acc := f !acc ~prob ~fathers
    else begin
      (* denominators of the weights cancel: everything is integral *)
      let denom = (c * (k - 2)) + ((d - c) * (k - 1)) in
      for u = 1 to k - 1 do
        let weight = (c * indeg.(u - 1)) + (d - c) in
        fathers.(k - 2) <- u;
        indeg.(u - 1) <- indeg.(u - 1) + 1;
        step (k + 1)
          (Rational.mul prob (Rational.make (Int64.of_int weight) (Int64.of_int denom)));
        indeg.(u - 1) <- indeg.(u - 1) - 1
      done
    end
  in
  indeg.(0) <- 1;
  step 3 Rational.one;
  !acc

let event_prob ~p ~t ~condition =
  fold ~p ~t ~init:0. ~f:(fun total ~prob ~fathers ->
      if condition (graph_of_fathers fathers) then total +. prob else total)
