module Rng = Sf_prng.Rng

type rigor = Exact | Statistical | Empirical

type statement = {
  id : string;
  claim : string;
  method_ : string;
  rigor : rigor;
  experiments : string list;
  check : seed:int -> (string * bool) list;
}

(* small helper: measured mean of the cheapest strategy at one size *)
let cheapest_mean ~seed ~make ~strategies ~n ~trials =
  let spec = { Searchability.default_spec with Searchability.trials } in
  let points =
    Searchability.measure (Rng.of_seed seed) ~make ~strategies ~sizes:[ n ] ~spec
  in
  List.fold_left
    (fun acc (pt : Searchability.point) -> Float.min acc pt.Searchability.mean)
    infinity points

let check_lemma3 ~seed:_ =
  List.concat_map
    (fun p ->
      List.map
        (fun a ->
          let b = Events.window_end ~a in
          ( Printf.sprintf "P(E) >= e^{-(1-p)} at p=%.2f, a=%d" p a,
            Events.prob_exact ~p ~a ~b >= Events.lemma3_bound ~p -. 1e-12 ))
        [ 10; 1_000; 1_000_000 ])
    [ 0.1; 0.5; 0.9; 1.0 ]

let check_lemma2 ~seed:_ =
  let float_cases =
    List.map
      (fun (p, t, a, b) ->
        let r = Equivalence.exact ~p ~t ~a ~b in
        ( Printf.sprintf "exhaustive at p=%.2f t=%d window [%d,%d]" p t (a + 1) b,
          r.Equivalence.max_discrepancy < 1e-12 ))
      [ (0.5, 7, 3, 6); (0.8, 8, 4, 7) ]
  in
  let rational_cases =
    List.map
      (fun (pn, pd, t, a, b) ->
        let r = Equivalence.exact_rational ~p_num:pn ~p_den:pd ~t ~a ~b in
        ( Printf.sprintf "exact rationals at p=%d/%d t=%d window [%d,%d]" pn pd t (a + 1) b,
          r.Equivalence.equal ))
      [ (1, 2, 7, 3, 6); (3, 4, 8, 4, 7) ]
  in
  float_cases @ rational_cases

let check_lemma1 ~seed =
  let p = 0.6 and n = 500 in
  let bound = (Lower_bound.theorem1 ~p ~m:1 ~n).Lower_bound.requests in
  let measured =
    cheapest_mean ~seed
      ~make:(Searchability.mori_instance ~p ~m:1)
      ~strategies:
        [ Sf_search.Strategies.bfs; Sf_search.Strategies.high_degree;
          Sf_search.Strategies.random_edge ~skip_known:true ]
      ~n ~trials:8
  in
  [
    ("bound formula |V| P(E) / 2", Lower_bound.lemma1 ~set_size:10 ~event_prob:0.5 = 2.5);
    ( Printf.sprintf "no measured strategy undercuts it (%.0f >= %.1f)" measured bound,
      measured >= bound );
  ]

let check_theorem1_weak ~seed =
  List.map
    (fun (p, m) ->
      let n = 400 in
      let bound = (Lower_bound.theorem1 ~p ~m ~n).Lower_bound.requests in
      let measured =
        cheapest_mean ~seed
          ~make:(Searchability.mori_instance ~p ~m)
          ~strategies:[ Sf_search.Strategies.bfs; Sf_search.Strategies.high_degree ]
          ~n ~trials:6
      in
      ( Printf.sprintf "p=%.2f m=%d: measured %.0f >= bound %.1f" p m measured bound,
        measured >= bound ))
    [ (0.5, 1); (0.8, 2) ]

let check_theorem1_strong ~seed =
  let p = 0.3 and n = 600 in
  let bound = (Lower_bound.theorem1 ~p ~m:1 ~n).Lower_bound.requests in
  let spec = { Searchability.default_spec with Searchability.trials = 6 } in
  let points =
    Searchability.measure (Rng.of_seed seed)
      ~make:(Searchability.mori_instance ~p ~m:1)
      ~strategies:(Sf_search.Strategies.strong_portfolio ())
      ~sizes:[ n ] ~spec
  in
  let measured =
    List.fold_left
      (fun acc (pt : Searchability.point) -> Float.min acc pt.Searchability.mean)
      infinity points
  in
  (* the strong bound is the weak bound divided by the max degree
     (simulation argument); at this scale that is a small constant,
     so we check the substantive direction: nobody is polylog *)
  [
    ( Printf.sprintf "strong searches still cost >> log n (%.0f >= %.1f)" measured
        (Float.min bound (3. *. log (float_of_int n))),
      measured >= Float.min bound (3. *. log (float_of_int n)) );
  ]

let check_theorem2 ~seed =
  let n = 400 in
  let params = Sf_gen.Cooper_frieze.default in
  let est =
    Lower_bound.theorem2_estimate (Rng.of_seed seed) params ~n ~trials:30 ()
  in
  let measured =
    cheapest_mean ~seed
      ~make:(Searchability.cooper_frieze_instance params)
      ~strategies:[ Sf_search.Strategies.bfs; Sf_search.Strategies.high_degree ]
      ~n ~trials:6
  in
  [
    ( Printf.sprintf "equivalence event rate %.2f bounded away from 0" est.Lower_bound.event_rate,
      est.Lower_bound.event_rate > 0.02 );
    ( Printf.sprintf "measured %.0f >= estimated bound %.1f" measured est.Lower_bound.requests,
      measured >= est.Lower_bound.requests );
  ]

let check_max_degree ~seed =
  let p = 0.8 in
  let series =
    Max_degree.mean_max_indegree (Rng.of_seed seed) ~p
      ~checkpoints:[ 1_024; 4_096; 16_384 ] ~trials:4
  in
  let fit = Max_degree.fit_exponent series in
  [
    ( Printf.sprintf "max indegree ~ t^p (fitted %.2f vs p=%.1f)" fit.Sf_stats.Regression.slope p,
      Float.abs (fit.Sf_stats.Regression.slope -. p) < 0.2 );
  ]

let check_degree_law ~seed =
  let p = 0.75 in
  let g = Sf_gen.Mori.tree (Rng.of_seed seed) ~p ~t:40_000 in
  let fit = Sf_stats.Power_law.fit_scan (Sf_graph.Metrics.in_degrees g) () in
  let predicted = Sf_gen.Mori.expected_degree_exponent ~p in
  [
    ( Printf.sprintf "power-law tail, gamma %.2f ~ 1 + 1/p = %.2f" fit.Sf_stats.Power_law.alpha
        predicted,
      Float.abs (fit.Sf_stats.Power_law.alpha -. predicted) < 0.5 );
  ]

let statements =
  [
    {
      id = "Lemma 2";
      claim =
        "In the Mori tree, the window [a+1, b] is probabilistically equivalent conditional on \
         E_{a,b} (every window vertex attaches into [1, a]).";
      method_ =
        "Exhaustive enumeration of the full tree probability space with the permutation \
         action applied outcome-by-outcome; repeated in exact rational arithmetic (zero \
         floating point).";
      rigor = Exact;
      experiments = [ "T6" ];
      check = check_lemma2;
    };
    {
      id = "Lemma 3";
      claim = "For b = a + floor(sqrt(a-1)), P(E_{a,b}) >= e^{-(1-p)}.";
      method_ =
        "Exact closed-form product for P(E_{a,b}) (derived in DESIGN.md §4), evaluated over \
         the (p, a) grid; cross-validated against enumeration and Monte-Carlo in the tests.";
      rigor = Exact;
      experiments = [ "T5"; "T18" ];
      check = check_lemma3;
    };
    {
      id = "Lemma 1";
      claim =
        "If V is equivalent conditional on E, any weak searcher for a target in V makes at \
         least |V| P(E) / 2 expected requests.";
      method_ =
        "The bound is computed with exact constants and confronted with the measured cost of \
         every implemented strategy.";
      rigor = Empirical;
      experiments = [ "T7" ];
      check = check_lemma1;
    };
    {
      id = "Theorem 1 (weak model)";
      claim =
        "In the merged Mori graph (any m >= 1, 0 < p <= 1), every weak-model searcher needs \
         Omega(sqrt n) expected requests to find vertex n.";
      method_ =
        "Lemmas 1-3 assembled with exact constants; measured search costs of the strategy \
         portfolio respect the bound at every size, with polynomial fitted exponents.";
      rigor = Empirical;
      experiments = [ "T1"; "T2"; "T7"; "T17" ];
      check = check_theorem1_weak;
    };
    {
      id = "Theorem 1 (strong model)";
      claim =
        "For p < 1/2, every strong-model searcher needs Omega(n^{1/2 - p - eps}) expected \
         requests.";
      method_ =
        "The strong->weak simulation (slowdown <= max degree, verified in T14) combined with \
         the max-degree law; strong-portfolio costs measured far above the bound.";
      rigor = Empirical;
      experiments = [ "T3"; "T14"; "T16" ];
      check = check_theorem1_strong;
    };
    {
      id = "Theorem 2";
      claim =
        "In every Cooper-Frieze model with 0 < alpha < 1, weak-model search needs \
         Omega(sqrt n) expected requests.";
      method_ =
        "The analogous containment event reconstructed on traced generations (the paper \
         omits the proof for space); its probability stays bounded away from 0 and the \
         resulting bound is respected by all measured strategies.";
      rigor = Statistical;
      experiments = [ "T4" ];
      check = check_theorem2;
    };
    {
      id = "Max-degree law (Mori 2005, as used)";
      claim = "The maximum degree of the Mori tree G_t is of order t^p.";
      method_ = "Replayed growth trajectories, log-log fit of the mean maximum indegree.";
      rigor = Empirical;
      experiments = [ "T8"; "T16" ];
      check = check_max_degree;
    };
    {
      id = "Scale-free degree law";
      claim =
        "The models produce power-law degree distributions with real-network exponents \
         (gamma between 2 and 3 for p in (1/2, 1)).";
      method_ =
        "Exact zeta-likelihood MLE with KS cutoff selection on generated trees, against the \
         Dorogovtsev-Mendes-Samukhin exponent 1 + 1/p.";
      rigor = Empirical;
      experiments = [ "T9"; "T15" ];
      check = check_degree_law;
    };
  ]

type report = { statement : statement; results : (string * bool) list }

let verify ~seed =
  List.map (fun s -> { statement = s; results = s.check ~seed }) statements

let all_pass reports =
  List.for_all (fun r -> List.for_all snd r.results) reports

let rigor_label = function
  | Exact -> "EXACT"
  | Statistical -> "STATISTICAL"
  | Empirical -> "EMPIRICAL"

let render reports =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "Paper verification certificate\n";
  Buffer.add_string buf "==============================\n\n";
  List.iter
    (fun r ->
      let ok = List.for_all snd r.results in
      Buffer.add_string buf
        (Printf.sprintf "%s %s [%s]\n" (if ok then "[verified]" else "[FAILED]  ")
           r.statement.id
           (rigor_label r.statement.rigor));
      Buffer.add_string buf (Printf.sprintf "  claim:  %s\n" r.statement.claim);
      Buffer.add_string buf (Printf.sprintf "  method: %s\n" r.statement.method_);
      Buffer.add_string buf
        (Printf.sprintf "  full-scale experiments: %s\n"
           (String.concat ", " r.statement.experiments));
      List.iter
        (fun (name, pass) ->
          Buffer.add_string buf
            (Printf.sprintf "    %s %s\n" (if pass then "+" else "!") name))
        r.results;
      Buffer.add_char buf '\n')
    reports;
  Buffer.contents buf
