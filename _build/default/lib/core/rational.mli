(** Exact rational arithmetic on 64-bit integers, with overflow
    detection.

    Purpose-built for the exact verification of Lemma 2
    ({!Equivalence.exact_rational}): the probability of a small Móri
    tree with rational [p = num/den] is a product of small fractions,
    so the whole equivalence check can run with {e no floating point
    at all} — equal distributions compare equal exactly, not within an
    epsilon. Every operation normalises (gcd-reduced, positive
    denominator) and raises {!Overflow} instead of wrapping, so a
    completed computation is a certificate. *)

type t
(** A normalised fraction. *)

exception Overflow

val make : int64 -> int64 -> t
(** [make num den]. @raise Invalid_argument if [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t

val num : t -> int64
val den : t -> int64
(** Always positive; [num]/[den] is in lowest terms. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Invalid_argument on division by zero.
    @raise Overflow when a result does not fit in 64 bits. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val to_float : t -> float
