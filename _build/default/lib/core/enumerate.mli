(** Exhaustive enumeration of the Móri-tree probability space.

    A tree [G_t] is determined by its father sequence
    [(N_3, …, N_t)] with [N_k ∈ [1, k-1]]; the space has [(t-1)!/1!]
    outcomes, each carrying an exact product probability. For small
    [t] this enumerates everything — the ground truth against which
    the closed forms ({!Events.prob_exact}) and the conditional
    sampler are validated, and the engine of the {e exact} Lemma 2
    verification. *)

val n_outcomes : t:int -> int
(** [(t-1)! / 1] — the number of father sequences, i.e. [∏_{k=3}^t (k-1)].
    Guards against accidental blow-ups: raises above [t = 12]. *)

val fold :
  p:float ->
  t:int ->
  init:'a ->
  f:('a -> prob:float -> fathers:int array -> 'a) ->
  'a
(** Visit every father sequence with its exact probability. The
    [fathers] array is reused between calls — copy if retained.
    [fathers.(k-2)] is [N_k]; [fathers.(0) = 1] always (vertex 2
    attaches to vertex 1). Probabilities sum to 1 (validated in
    tests). @raise Invalid_argument beyond [t = 12]. *)

val graph_of_fathers : int array -> Sf_graph.Digraph.t
(** The labelled tree with the given father sequence. *)

val distribution :
  p:float ->
  t:int ->
  ?condition:(Sf_graph.Digraph.t -> bool) ->
  unit ->
  (string * float) list
(** The exact probability distribution over labelled trees, as
    (canonical key, probability) pairs sorted by key, conditioned on
    [condition] (renormalised); the empty list if the condition has
    probability 0. *)

val event_prob :
  p:float -> t:int -> condition:(Sf_graph.Digraph.t -> bool) -> float
(** Exact probability of an arbitrary graph event, by enumeration. *)

val fold_rational :
  p_num:int ->
  p_den:int ->
  t:int ->
  init:'a ->
  f:('a -> prob:Rational.t -> fathers:int array -> 'a) ->
  'a
(** {!fold} in exact rational arithmetic, for rational
    [p = p_num / p_den]: the step probability
    [(c·indeg(u) + (d−c)) / (c(k−2) + (d−c)(k−1))] is a ratio of small
    integers, so every outcome probability is an exact fraction and
    the total is exactly 1. Requires [0 < p_num <= p_den] and
    [t <= 12]; raises {!Rational.Overflow} if 64-bit fractions ever
    fail to suffice (they do not for the supported range). *)
