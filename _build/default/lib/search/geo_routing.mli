(** Kleinberg's greedy geographic routing [Kle00] — the navigable
    benchmark the paper contrasts with.

    This searcher has {e more} knowledge than even the strong local
    model: every vertex knows its own and its neighbours' positions in
    an underlying metric (here, the toroidal lattice), and forwards to
    the neighbour closest to the target. The paper's point is that
    scale-free graphs offer no such metric to exploit; this module
    quantifies what that costs. *)

type result = {
  reached : bool;
  steps : int; (** hops taken (= messages sent) *)
}

val greedy :
  Sf_graph.Ugraph.t ->
  dist:(int -> int -> int) ->
  source:int ->
  target:int ->
  max_steps:int ->
  result
(** Forward greedily by [dist] to the target until reached or
    [max_steps] hops; ties broken by first occurrence. The walk moves
    even when no neighbour improves the distance (it takes the best
    available), so [max_steps] is the only termination guard besides
    arrival. *)
