type step =
  | Request_edge of Oracle.vertex * Oracle.handle
  | Request_vertex of Oracle.vertex
  | Give_up

type t = {
  name : string;
  description : string;
  model : Oracle.model;
  prepare : Sf_prng.Rng.t -> Oracle.t -> unit -> step;
}

module Cursor = struct
  type cursor = (int, int) Hashtbl.t (* vertex -> next handle index *)

  let create () : cursor = Hashtbl.create 64

  let useless oracle ~skip_known h =
    Oracle.handle_requested oracle h
    || (skip_known && Oracle.endpoints_if_known oracle h <> None)

  let next_handle cur oracle ~skip_known v =
    let hs = Oracle.handles oracle v in
    let len = Array.length hs in
    let i = ref (Option.value ~default:0 (Hashtbl.find_opt cur v)) in
    (* A requested handle is useless forever; a known-endpoints handle
       stays useless too (endpoints never become undiscovered), so
       advancing the cursor past both is safe. *)
    while !i < len && useless oracle ~skip_known hs.(!i) do
      incr i
    done;
    Hashtbl.replace cur v !i;
    if !i < len then Some hs.(!i) else None

  let exhausted cur oracle v =
    match Hashtbl.find_opt cur v with
    | Some i -> i >= Array.length (Oracle.handles oracle v)
    | None -> Array.length (Oracle.handles oracle v) = 0
end
