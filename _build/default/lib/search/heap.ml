type t = {
  mutable prio : float array;
  mutable value : int array;
  mutable len : int;
}

let create () = { prio = Array.make 16 0.; value = Array.make 16 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let swap t i j =
  let p = t.prio.(i) and v = t.value.(i) in
  t.prio.(i) <- t.prio.(j);
  t.value.(i) <- t.value.(j);
  t.prio.(j) <- p;
  t.value.(j) <- v

let ensure t =
  if t.len = Array.length t.prio then begin
    let prio' = Array.make (2 * t.len) 0. and value' = Array.make (2 * t.len) 0 in
    Array.blit t.prio 0 prio' 0 t.len;
    Array.blit t.value 0 value' 0 t.len;
    t.prio <- prio';
    t.value <- value'
  end

let push t ~priority v =
  ensure t;
  t.prio.(t.len) <- priority;
  t.value.(t.len) <- v;
  t.len <- t.len + 1;
  let i = ref (t.len - 1) in
  while !i > 0 && t.prio.((!i - 1) / 2) < t.prio.(!i) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let peek_max t = if t.len = 0 then None else Some (t.prio.(0), t.value.(0))

let pop_max t =
  if t.len = 0 then None
  else begin
    let top = (t.prio.(0), t.value.(0)) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.prio.(0) <- t.prio.(t.len);
      t.value.(0) <- t.value.(t.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let largest = ref !i in
        if l < t.len && t.prio.(l) > t.prio.(!largest) then largest := l;
        if r < t.len && t.prio.(r) > t.prio.(!largest) then largest := r;
        if !largest = !i then continue := false
        else begin
          swap t !i !largest;
          i := !largest
        end
      done
    end;
    Some top
  end
