type result = { reached : bool; steps : int }

let greedy g ~dist ~source ~target ~max_steps =
  let rec go current steps =
    if current = target then { reached = true; steps }
    else if steps >= max_steps then { reached = false; steps }
    else begin
      let best = ref None in
      Sf_graph.Ugraph.iter_neighbors g current (fun v ->
          let d = dist v target in
          match !best with
          | Some (_, bd) when bd <= d -> ()
          | _ -> best := Some (v, d));
      match !best with
      | None -> { reached = false; steps }
      | Some (v, _) -> go v (steps + 1)
    end
  in
  go source 0
