module Rng = Sf_prng.Rng
module Vec = Sf_graph.Vec
open Strategy

(* Feed every not-yet-seen discovery to [f]; strategies call this at
   each step to ingest what the previous request revealed. *)
let sync oracle seen f =
  let count = Oracle.discovered_count oracle in
  while !seen < count do
    f (Oracle.discovered_nth oracle !seen);
    incr seen
  done

let best_first ~name ~description ~score =
  let prepare _rng oracle =
    let cur = Cursor.create () in
    let heap = Heap.create () in
    let seen = ref 0 in
    fun () ->
      sync oracle seen (fun v -> Heap.push heap ~priority:(score oracle v) v);
      let rec pick () =
        match Heap.pop_max heap with
        | None -> Give_up
        | Some (priority, v) -> (
          match Cursor.next_handle cur oracle ~skip_known:true v with
          | Some h ->
            (* Keep the vertex live for its remaining handles. *)
            Heap.push heap ~priority v;
            Request_edge (v, h)
          | None -> pick ())
      in
      pick ()
  in
  { name; description; model = Oracle.Weak; prepare }

let strong_best_first ~name ~description ~score =
  let prepare _rng oracle =
    let heap = Heap.create () in
    let seen = ref 0 in
    fun () ->
      sync oracle seen (fun v -> Heap.push heap ~priority:(score oracle v) v);
      let rec pick () =
        match Heap.pop_max heap with
        | None -> Give_up
        | Some (_, v) -> if Oracle.is_explored oracle v then pick () else Request_vertex v
      in
      pick ()
  in
  { name; description; model = Oracle.Strong; prepare }

let bfs =
  let prepare _rng oracle =
    let cur = Cursor.create () in
    let front = ref 0 in
    fun () ->
      let rec pick () =
        if !front >= Oracle.discovered_count oracle then Give_up
        else begin
          let v = Oracle.discovered_nth oracle !front in
          match Cursor.next_handle cur oracle ~skip_known:true v with
          | Some h -> Request_edge (v, h)
          | None ->
            incr front;
            pick ()
        end
      in
      pick ()
  in
  {
    name = "bfs";
    description = "breadth-first flooding in discovery order";
    model = Oracle.Weak;
    prepare;
  }

let dfs =
  let prepare _rng oracle =
    let cur = Cursor.create () in
    let stack = Vec.create () in
    let seen = ref 0 in
    fun () ->
      sync oracle seen (fun v -> Vec.push stack v);
      let rec pick () =
        if Vec.is_empty stack then Give_up
        else begin
          let v = Vec.get stack (Vec.length stack - 1) in
          match Cursor.next_handle cur oracle ~skip_known:true v with
          | Some h -> Request_edge (v, h)
          | None ->
            ignore (Vec.pop stack);
            pick ()
        end
      in
      pick ()
  in
  {
    name = "dfs";
    description = "depth-first probing";
    model = Oracle.Weak;
    prepare;
  }

let random_edge ~skip_known =
  let prepare rng oracle =
    (* One slot per (vertex, handle-index) pair; uniform swap-remove
       sampling with lazy usefulness checks. *)
    let owners = Vec.create () and indices = Vec.create () in
    let seen = ref 0 in
    fun () ->
      sync oracle seen (fun v ->
          Array.iteri
            (fun i _ ->
              Vec.push owners v;
              Vec.push indices i)
            (Oracle.handles oracle v));
      let rec pick () =
        if Vec.is_empty owners then Give_up
        else begin
          let j = Rng.int rng (Vec.length owners) in
          let v = Vec.get owners j and i = Vec.get indices j in
          let last = Vec.length owners - 1 in
          Vec.set owners j (Vec.get owners last);
          Vec.set indices j (Vec.get indices last);
          ignore (Vec.pop owners);
          ignore (Vec.pop indices);
          let h = (Oracle.handles oracle v).(i) in
          if
            Oracle.handle_requested oracle h
            || (skip_known && Oracle.endpoints_if_known oracle h <> None)
          then pick ()
          else Request_edge (v, h)
        end
      in
      pick ()
  in
  {
    name = (if skip_known then "rand-edge+skip" else "rand-edge");
    description = "uniform random unexplored handle of the discovered region";
    model = Oracle.Weak;
    prepare;
  }

let random_walk =
  let prepare rng oracle =
    let pos = ref (Oracle.source oracle) in
    let last = ref None in
    fun () ->
      (* Move to wherever the previous request led. *)
      (match !last with
      | Some (owner, h) -> (
        match Oracle.endpoints_if_known oracle h with
        | Some (s, d) -> pos := if s = owner then d else s
        | None -> ())
      | None -> ());
      let hs = Oracle.handles oracle !pos in
      if Array.length hs = 0 then Give_up
      else begin
        let h = hs.(Rng.int rng (Array.length hs)) in
        last := Some (!pos, h);
        Request_edge (!pos, h)
      end
  in
  {
    name = "rand-walk";
    description = "memoryless uniform random walk, one request per hop";
    model = Oracle.Weak;
    prepare;
  }

let degree_score oracle v = float_of_int (Oracle.degree oracle v)
let label_score oracle v = -.Float.abs (float_of_int (v - Oracle.target oracle))
let age_score _oracle v = -.float_of_int v

let high_degree =
  best_first ~name:"high-degree"
    ~description:"Adamic et al.: request from the highest-degree discovered vertex"
    ~score:degree_score

let min_label_distance =
  best_first ~name:"min-label-dist"
    ~description:"request from the vertex whose identity is closest to the target's"
    ~score:label_score

let oldest_label =
  best_first ~name:"oldest-label"
    ~description:"request from the oldest (smallest-identity) discovered vertex"
    ~score:age_score

let strong_seq =
  let prepare _rng oracle =
    let front = ref 0 in
    fun () ->
      let rec pick () =
        if !front >= Oracle.discovered_count oracle then Give_up
        else begin
          let v = Oracle.discovered_nth oracle !front in
          if Oracle.is_explored oracle v then begin
            incr front;
            pick ()
          end
          else Request_vertex v
        end
      in
      pick ()
  in
  {
    name = "s-bfs";
    description = "strong model: explore vertices in discovery order";
    model = Oracle.Strong;
    prepare;
  }

let strong_random =
  let prepare rng oracle =
    let pool = Vec.create () in
    let seen = ref 0 in
    fun () ->
      sync oracle seen (fun v -> Vec.push pool v);
      let rec pick () =
        if Vec.is_empty pool then Give_up
        else begin
          let j = Rng.int rng (Vec.length pool) in
          let v = Vec.get pool j in
          let lastv = Vec.get pool (Vec.length pool - 1) in
          Vec.set pool j lastv;
          ignore (Vec.pop pool);
          if Oracle.is_explored oracle v then pick () else Request_vertex v
        end
      in
      pick ()
  in
  {
    name = "s-rand";
    description = "strong model: explore a uniform unexplored discovered vertex";
    model = Oracle.Strong;
    prepare;
  }

let known_neighbors oracle v =
  (* In the strong model every neighbour of an explored vertex is
     discovered, so its handles resolve to endpoint pairs. *)
  Array.to_list (Oracle.handles oracle v)
  |> List.filter_map (fun h ->
         match Oracle.endpoints_if_known oracle h with
         | Some (s, d) -> Some (if s = v then d else s)
         | None -> None)

let strong_random_walk =
  let prepare rng oracle =
    let pos = ref (Oracle.source oracle) in
    let moved = ref false in
    fun () ->
      (* One request per hop, revisits included — the node-visit cost
         model of Adamic et al. *)
      if !moved then begin
        match known_neighbors oracle !pos with
        | [] -> ()
        | neighbors -> pos := List.nth neighbors (Rng.int rng (List.length neighbors))
      end;
      moved := true;
      Request_vertex !pos
  in
  {
    name = "s-rand-walk";
    description = "strong model: random walk paying one request per hop";
    model = Oracle.Strong;
    prepare;
  }

let strong_high_degree =
  strong_best_first ~name:"s-high-degree"
    ~description:"strong model: explore the highest-degree unexplored vertex"
    ~score:degree_score

let strong_min_label =
  strong_best_first ~name:"s-min-label"
    ~description:"strong model: explore the vertex with identity closest to the target"
    ~score:label_score

let epsilon_greedy ~epsilon =
  if epsilon < 0. || epsilon > 1. then invalid_arg "Strategies.epsilon_greedy: need epsilon in [0,1]";
  let greedy = best_first ~name:"" ~description:"" ~score:degree_score in
  let random = random_edge ~skip_known:true in
  let prepare rng oracle =
    let greedy_step = greedy.prepare (Rng.split rng) oracle in
    let random_step = random.prepare (Rng.split rng) oracle in
    fun () ->
      if Rng.bernoulli rng epsilon then
        match random_step () with Give_up -> greedy_step () | step -> step
      else
        match greedy_step () with Give_up -> random_step () | step -> step
  in
  {
    name = Printf.sprintf "eps-greedy-%.2f" epsilon;
    description = "high-degree greedy with an epsilon of uniform exploration";
    model = Oracle.Weak;
    prepare;
  }

let restart_walk ~restart =
  if restart < 0. || restart >= 1. then
    invalid_arg "Strategies.restart_walk: need restart in [0,1)";
  let prepare rng oracle =
    let pos = ref (Oracle.source oracle) in
    let last = ref None in
    fun () ->
      (match !last with
      | Some (owner, h) -> (
        match Oracle.endpoints_if_known oracle h with
        | Some (s, d) -> pos := if s = owner then d else s
        | None -> ())
      | None -> ());
      (* teleport home with the restart probability - the classic
         remedy for walks drifting into the periphery *)
      if Rng.bernoulli rng restart then pos := Oracle.source oracle;
      let hs = Oracle.handles oracle !pos in
      if Array.length hs = 0 then Give_up
      else begin
        let h = hs.(Rng.int rng (Array.length hs)) in
        last := Some (!pos, h);
        Request_edge (!pos, h)
      end
  in
  {
    name = Printf.sprintf "restart-walk-%.2f" restart;
    description = "random walk with teleport-to-source restarts";
    model = Oracle.Weak;
    prepare;
  }

let timestamp_cheat =
  let prepare _rng oracle =
    (* In a Móri tree with raw edge ids, edge id e is the out-edge of
       vertex e + 2, so the target's own edge has id (target - 2) and
       becomes *visible* in its father's handle list the moment the
       father is discovered - no request needed to see it.  Scan every
       newly discovered vertex for that id; fall back to high-degree
       exploration (fathers of late vertices are degree-biased, so
       hubs are the right place to look). *)
    let target_edge = Oracle.target oracle - 2 in
    let cur = Cursor.create () in
    let heap = Heap.create () in
    let seen = ref 0 in
    let jackpot = ref None in
    fun () ->
      sync oracle seen (fun v ->
          Heap.push heap ~priority:(degree_score oracle v) v;
          if !jackpot = None && Array.exists (fun h -> h = target_edge) (Oracle.handles oracle v)
          then jackpot := Some v);
      match !jackpot with
      | Some v when not (Oracle.handle_requested oracle target_edge) ->
        Request_edge (v, target_edge)
      | _ ->
        let rec pick () =
          match Heap.pop_max heap with
          | None -> Give_up
          | Some (priority, v) -> (
            match Cursor.next_handle cur oracle ~skip_known:true v with
            | Some h ->
              Heap.push heap ~priority v;
              Request_edge (v, h)
            | None -> pick ())
        in
        pick ()
  in
  {
    name = "timestamp-cheat";
    description =
      "exploits raw edge-id timestamps (only works on non-obfuscated oracles over trees)";
    model = Oracle.Weak;
    prepare;
  }

let weak_portfolio () =
  [
    bfs;
    dfs;
    random_edge ~skip_known:true;
    random_walk;
    high_degree;
    min_label_distance;
    oldest_label;
  ]

let strong_portfolio () =
  [ strong_seq; strong_random; strong_high_degree; strong_min_label; strong_random_walk ]
