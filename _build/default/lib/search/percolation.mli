(** Sarshar–Boykin–Roychowdhury percolation search [SBR04]: the
    replication-based protocol the paper cites as the sublinear
    workaround for unsearchable power-law networks.

    The protocol trades storage for lookup time: every content owner
    replicates its content along a random walk; a querier also walks,
    then broadcasts the query epidemically (each edge forwards with
    probability [broadcast_prob] — bond percolation). Above the
    percolation threshold of the high-degree core, the replica walk
    and the query cluster intersect with high probability while both
    remain far smaller than [n].

    Cost is counted in {e messages} (edge transmissions), the natural
    analogue of the request count in the paper's model. *)

type params = {
  replication_walk : int; (** replica-walk length of the content owner *)
  query_walk : int; (** walk length seeding the query *)
  broadcast_prob : float; (** per-edge forwarding probability *)
  max_messages : int; (** hard message budget *)
}

val default_params : n:int -> params
(** The √n-flavoured setting of the paper: walks of length [⌈√n⌉],
    forwarding probability 0.5, budget [8n]. *)

type result = {
  hit : bool; (** did the query meet a replica? *)
  messages : int;
  contacted : int; (** distinct vertices the query reached *)
  replicas : int; (** distinct vertices holding a replica *)
}

val replicate :
  Sf_prng.Rng.t -> Sf_graph.Ugraph.t -> owner:int -> walk_length:int -> bool array
(** Replica placement: the set of vertices visited by a random walk
    from [owner] (owner included), as a membership array. *)

val query :
  Sf_prng.Rng.t ->
  Sf_graph.Ugraph.t ->
  params ->
  source:int ->
  replicas:bool array ->
  result
(** Run the query phase from [source] against a replica set: seed walk,
    then probabilistic flooding from every seed. Stops early on the
    first replica hit or when the message budget is exhausted. *)

val run :
  Sf_prng.Rng.t -> Sf_graph.Ugraph.t -> params -> source:int -> target:int -> result
(** Replicate the target's content, then query from [source]. *)
