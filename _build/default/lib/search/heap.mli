(** Binary max-heap of [int] values with [float] priorities; the
    best-first search strategies' work queue. Ties broken
    arbitrarily. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool
val push : t -> priority:float -> int -> unit

val pop_max : t -> (float * int) option
(** Highest-priority entry, or [None] when empty. *)

val peek_max : t -> (float * int) option
