lib/search/percolation.mli: Sf_graph Sf_prng
