lib/search/strategy.mli: Oracle Sf_prng
