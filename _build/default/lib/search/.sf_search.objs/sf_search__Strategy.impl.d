lib/search/strategy.ml: Array Hashtbl Option Oracle Sf_prng
