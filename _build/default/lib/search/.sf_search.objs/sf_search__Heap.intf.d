lib/search/heap.mli:
