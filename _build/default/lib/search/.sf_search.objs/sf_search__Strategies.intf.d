lib/search/strategies.mli: Oracle Strategy
