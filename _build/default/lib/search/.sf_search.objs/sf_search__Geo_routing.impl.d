lib/search/geo_routing.ml: Sf_graph
