lib/search/percolation.ml: Array Queue Sf_graph Sf_prng
