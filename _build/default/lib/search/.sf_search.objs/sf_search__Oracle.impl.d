lib/search/oracle.ml: Array Hashtbl List Sf_graph Sf_prng
