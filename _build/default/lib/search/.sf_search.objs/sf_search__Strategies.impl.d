lib/search/strategies.ml: Array Cursor Float Heap List Oracle Printf Sf_graph Sf_prng Strategy
