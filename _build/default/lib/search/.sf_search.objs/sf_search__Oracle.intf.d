lib/search/oracle.mli: Sf_graph Sf_prng
