lib/search/runner.ml: List Oracle Sf_prng Sf_stats Strategy String
