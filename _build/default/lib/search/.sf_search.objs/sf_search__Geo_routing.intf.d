lib/search/geo_routing.mli: Sf_graph
