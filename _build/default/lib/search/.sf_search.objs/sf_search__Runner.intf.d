lib/search/runner.mli: Oracle Sf_graph Sf_prng Strategy
