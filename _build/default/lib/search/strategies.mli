(** The strategy portfolio measured against the paper's lower bounds.

    Weak-model strategies (request = one edge endpoint):
    - [bfs] — flood outward in discovery order; the expanding-ring
      search of unstructured P2P systems.
    - [dfs] — depth-first probing.
    - [random_edge] — request a uniformly random unexplored handle of
      the discovered region ([~skip_known:true] never re-requests an
      edge whose endpoints are both known).
    - [random_walk] — the memoryless walk of Adamic et al.: hop along
      a uniform incident edge, paying every hop.
    - [high_degree] — Adamic et al.'s degree-seeking greedy: always
      request from the highest-degree discovered vertex with an
      unexplored handle.
    - [min_label_distance] — prefer vertices whose {e identity} is
      numerically closest to the target's: the natural attempt to
      exploit the label structure (identities are insertion times).
    - [oldest_label] — prefer small identities: chase the old, highly
      connected core first.

    Strong-model strategies (request = full neighbourhood):
    [strong_seq], [strong_random], [strong_high_degree],
    [strong_min_label] — the same disciplines on whole-vertex
    requests.

    All of them are built from two generic combinators, exported for
    writing new disciplines in examples and tests. *)

val best_first :
  name:string ->
  description:string ->
  score:(Oracle.t -> Oracle.vertex -> float) ->
  Strategy.t
(** Weak-model best-first search: repeatedly request the next useful
    handle of the live discovered vertex maximising [score] (score is
    read once, when the vertex is discovered). *)

val strong_best_first :
  name:string ->
  description:string ->
  score:(Oracle.t -> Oracle.vertex -> float) ->
  Strategy.t

val bfs : Strategy.t
val dfs : Strategy.t
val random_edge : skip_known:bool -> Strategy.t
val random_walk : Strategy.t
val high_degree : Strategy.t
val min_label_distance : Strategy.t
val oldest_label : Strategy.t

val strong_seq : Strategy.t
val strong_random : Strategy.t
val strong_high_degree : Strategy.t
val strong_min_label : Strategy.t

val strong_random_walk : Strategy.t
(** The random walk in Adamic et al.'s cost model: every hop is one
    whole-vertex request, revisits included. *)

val epsilon_greedy : epsilon:float -> Strategy.t
(** Mixture discipline: with probability [epsilon] take the uniform
    random-edge step, otherwise the high-degree greedy step (each
    falling back to the other when out of moves). The classic
    exploration/exploitation knob for unstructured search. *)

val restart_walk : restart:float -> Strategy.t
(** Random walk that teleports back to the source with probability
    [restart] before each hop — the standard fix for walks drifting
    into the periphery of heavy-tailed graphs. *)

val timestamp_cheat : Strategy.t
(** {b A deliberate model violation, for the T17 ablation.} In a Móri
    tree the physical edge id [e] is the out-edge of vertex [e + 2],
    so on a non-obfuscated oracle this strategy can {e recognise} the
    target's own edge (id [target − 2]) for free the moment the
    target's father is discovered, and grabs it. Timestamps break the
    exchangeability argument behind Lemma 2 (σ(G) carries permuted
    timestamps), so the paper's {e proof} does not survive this leak —
    but the measured cost barely drops: the father of a fresh vertex
    is a near-uniformly spread vertex, and knowing {e which} edge is
    the target's does not reveal {e where} it is. Against the default
    (obfuscated) oracle the grab rule matches a meaningless
    discovery-order id and the strategy degenerates to its high-degree
    fallback. *)

val weak_portfolio : unit -> Strategy.t list
(** The default weak-model adversary set used by the experiments. *)

val strong_portfolio : unit -> Strategy.t list
