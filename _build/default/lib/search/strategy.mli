(** The strategy abstraction: a named recipe that, given a private
    random stream and a fresh oracle, yields a stepper emitting one
    request decision at a time.

    Strategies observe the world exclusively through {!Oracle}'s
    observation functions — they never touch the graph — so every
    strategy here is a legitimate "local distributed algorithm" in the
    paper's sense. *)

type step =
  | Request_edge of Oracle.vertex * Oracle.handle
      (** weak request [(owner, handle)] *)
  | Request_vertex of Oracle.vertex  (** strong request *)
  | Give_up
      (** the strategy has no useful move left (everything reachable
          discovered) *)

type t = {
  name : string;
  description : string;
  model : Oracle.model;
  prepare : Sf_prng.Rng.t -> Oracle.t -> unit -> step;
}

(** {1 A cursor over a vertex's not-yet-useful handles}

    Shared by most strategies: walks a discovered vertex's handle list
    left to right, skipping handles that were already paid for and
    (optionally) handles whose two endpoints the searcher already
    knows — requesting those can never discover anything. *)

module Cursor : sig
  type cursor

  val create : unit -> cursor

  val next_handle :
    cursor -> Oracle.t -> skip_known:bool -> Oracle.vertex -> Oracle.handle option
  (** Next potentially useful handle of the vertex, advancing past
      permanently useless ones. Returns the same handle again until it
      is requested (usefulness is re-checked each call, since other
      requests may have revealed its endpoints in the meantime). *)

  val exhausted : cursor -> Oracle.t -> Oracle.vertex -> bool
  (** The cursor has passed the end of the vertex's handle list. *)
end
