type vertex = int
type edge = { id : int; src : vertex; dst : vertex }

(* Edges live in two flat parallel vectors indexed by edge id; each
   vertex keeps vectors of incident edge ids.  Vertex v's slots are at
   array index v-1. *)
type t = {
  srcs : Vec.t;
  dsts : Vec.t;
  mutable outs : Vec.t array; (* out-edge ids per vertex *)
  mutable ins : Vec.t array; (* in-edge ids per vertex *)
  mutable n : int;
}

let create ?(expected_vertices = 16) () =
  let cap = max 1 expected_vertices in
  {
    srcs = Vec.create ~capacity:(2 * cap) ();
    dsts = Vec.create ~capacity:(2 * cap) ();
    outs = Array.init cap (fun _ -> Vec.create ~capacity:2 ());
    ins = Array.init cap (fun _ -> Vec.create ~capacity:2 ());
    n = 0;
  }

let n_vertices t = t.n
let n_edges t = Vec.length t.srcs
let mem_vertex t v = v >= 1 && v <= t.n

let grow_vertex_arrays t =
  let cap = Array.length t.outs in
  if t.n = cap then begin
    let cap' = 2 * cap in
    let outs' = Array.init cap' (fun i -> if i < cap then t.outs.(i) else Vec.create ~capacity:2 ()) in
    let ins' = Array.init cap' (fun i -> if i < cap then t.ins.(i) else Vec.create ~capacity:2 ()) in
    t.outs <- outs';
    t.ins <- ins'
  end

let add_vertex t =
  grow_vertex_arrays t;
  t.n <- t.n + 1;
  t.n

let add_vertices t k =
  for _ = 1 to k do
    ignore (add_vertex t)
  done

let check_vertex t v name =
  if not (mem_vertex t v) then invalid_arg ("Digraph." ^ name ^ ": vertex out of range")

let add_edge t ~src ~dst =
  check_vertex t src "add_edge";
  check_vertex t dst "add_edge";
  let id = Vec.length t.srcs in
  Vec.push t.srcs src;
  Vec.push t.dsts dst;
  Vec.push t.outs.(src - 1) id;
  Vec.push t.ins.(dst - 1) id;
  { id; src; dst }

let edge t id =
  if id < 0 || id >= n_edges t then invalid_arg "Digraph.edge: id out of range";
  { id; src = Vec.get t.srcs id; dst = Vec.get t.dsts id }

let out_degree t v =
  check_vertex t v "out_degree";
  Vec.length t.outs.(v - 1)

let in_degree t v =
  check_vertex t v "in_degree";
  Vec.length t.ins.(v - 1)

let degree t v = out_degree t v + in_degree t v

let iter_out_edges t v f =
  check_vertex t v "iter_out_edges";
  Vec.iter (fun id -> f (edge t id)) t.outs.(v - 1)

let iter_in_edges t v f =
  check_vertex t v "iter_in_edges";
  Vec.iter (fun id -> f (edge t id)) t.ins.(v - 1)

let out_edges t v =
  let acc = ref [] in
  iter_out_edges t v (fun e -> acc := e :: !acc);
  List.rev !acc

let in_edges t v =
  let acc = ref [] in
  iter_in_edges t v (fun e -> acc := e :: !acc);
  List.rev !acc

let iter_vertices t f =
  for v = 1 to t.n do
    f v
  done

let iter_edges t f =
  for id = 0 to n_edges t - 1 do
    f (edge t id)
  done

let fold_edges t ~init ~f =
  let acc = ref init in
  iter_edges t (fun e -> acc := f !acc e);
  !acc

let edges t = List.rev (fold_edges t ~init:[] ~f:(fun acc e -> e :: acc))

let copy t =
  {
    srcs = Vec.copy t.srcs;
    dsts = Vec.copy t.dsts;
    outs = Array.map Vec.copy t.outs;
    ins = Array.map Vec.copy t.ins;
    n = t.n;
  }

let of_edges ~n pairs =
  let t = create ~expected_vertices:n () in
  add_vertices t n;
  List.iter (fun (src, dst) -> ignore (add_edge t ~src ~dst)) pairs;
  t

let sorted_edge_pairs t =
  let pairs = Array.init (n_edges t) (fun id -> (Vec.get t.srcs id, Vec.get t.dsts id)) in
  Array.sort compare pairs;
  pairs

let equal_structure a b =
  n_vertices a = n_vertices b
  && n_edges a = n_edges b
  && sorted_edge_pairs a = sorted_edge_pairs b

let canonical_key t =
  let buf = Buffer.create (16 + (8 * n_edges t)) in
  Buffer.add_string buf (string_of_int (n_vertices t));
  Array.iter
    (fun (s, d) ->
      Buffer.add_char buf '|';
      Buffer.add_string buf (string_of_int s);
      Buffer.add_char buf '>';
      Buffer.add_string buf (string_of_int d))
    (sorted_edge_pairs t);
  Buffer.contents buf
