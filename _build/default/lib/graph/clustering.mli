(** Clustering coefficients.

    Small-world narratives combine short distances with clustering;
    the evolving models here have vanishing clustering (trees have
    none at all), which module quantifies. Self-loops and edge
    multiplicities are ignored (coefficients are defined on the
    underlying simple graph). *)

val local_coefficient : Ugraph.t -> int -> float
(** Fraction of the vertex's neighbour pairs that are themselves
    adjacent; 0 for degree < 2. *)

val average_local : Ugraph.t -> float
(** Watts–Strogatz clustering coefficient: the mean of
    {!local_coefficient} over all vertices. *)

val global_transitivity : Ugraph.t -> float
(** 3 × triangles / open-or-closed wedges; 0 for triangle-free
    graphs. *)

val triangle_count : Ugraph.t -> int
