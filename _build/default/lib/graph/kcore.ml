(* Batagelj–Zaveršnik: repeatedly remove a minimum-degree vertex; the
   degree at removal time (made monotone) is its coreness.  Implemented
   with the classic bucket-sorted vertex array and in-place swaps. *)

let coreness g =
  let n = Ugraph.n_vertices g in
  if n = 0 then [||]
  else begin
    let deg = Array.init n (fun i -> Ugraph.degree g (i + 1)) in
    let max_deg = Array.fold_left max 0 deg in
    (* bucket start positions by degree *)
    let bin = Array.make (max_deg + 2) 0 in
    Array.iter (fun d -> bin.(d) <- bin.(d) + 1) deg;
    let start = ref 0 in
    for d = 0 to max_deg do
      let count = bin.(d) in
      bin.(d) <- !start;
      start := !start + count
    done;
    (* vert: vertices sorted by current degree; pos: inverse *)
    let vert = Array.make n 0 and pos = Array.make n 0 in
    let fill = Array.copy bin in
    Array.iteri
      (fun i d ->
        vert.(fill.(d)) <- i;
        pos.(i) <- fill.(d);
        fill.(d) <- fill.(d) + 1)
      deg;
    let core = Array.copy deg in
    for idx = 0 to n - 1 do
      let v = vert.(idx) in
      core.(v) <- deg.(v);
      (* lower each not-yet-removed neighbour's degree by one, keeping
         the bucket structure consistent *)
      Ugraph.iter_neighbors g (v + 1) (fun u1 ->
          let u = u1 - 1 in
          if deg.(u) > deg.(v) then begin
            let du = deg.(u) in
            let pu = pos.(u) in
            let pw = bin.(du) in
            let w = vert.(pw) in
            if u <> w then begin
              vert.(pu) <- w;
              vert.(pw) <- u;
              pos.(u) <- pw;
              pos.(w) <- pu
            end;
            bin.(du) <- bin.(du) + 1;
            deg.(u) <- du - 1
          end)
    done;
    core
  end

let degeneracy g = Array.fold_left max 0 (coreness g)

let core_sizes g =
  let core = coreness g in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun k -> Hashtbl.replace tbl k (1 + try Hashtbl.find tbl k with Not_found -> 0))
    core;
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let k_core g ~k =
  let core = coreness g in
  let acc = ref [] in
  for v = Array.length core downto 1 do
    if core.(v - 1) >= k then acc := v :: !acc
  done;
  !acc
