lib/graph/subgraph.mli: Digraph
