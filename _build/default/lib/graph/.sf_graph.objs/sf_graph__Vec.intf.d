lib/graph/vec.mli:
