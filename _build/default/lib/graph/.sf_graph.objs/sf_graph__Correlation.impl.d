lib/graph/correlation.ml: Array Fun Hashtbl List Sf_stats Ugraph
