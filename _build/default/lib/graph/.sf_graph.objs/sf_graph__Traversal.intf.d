lib/graph/traversal.mli: Sf_prng Ugraph
