lib/graph/ugraph.ml: Array Digraph List
