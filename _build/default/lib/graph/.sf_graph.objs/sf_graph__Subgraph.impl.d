lib/graph/subgraph.ml: Array Digraph List Traversal Ugraph
