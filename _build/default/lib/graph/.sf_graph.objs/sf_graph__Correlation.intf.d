lib/graph/correlation.mli: Ugraph
