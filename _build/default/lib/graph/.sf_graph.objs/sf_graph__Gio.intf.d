lib/graph/gio.mli: Digraph
