lib/graph/ugraph.mli: Digraph
