lib/graph/digraph.ml: Array Buffer List Vec
