lib/graph/digraph.mli:
