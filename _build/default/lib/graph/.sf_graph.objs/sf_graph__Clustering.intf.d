lib/graph/clustering.mli: Ugraph
