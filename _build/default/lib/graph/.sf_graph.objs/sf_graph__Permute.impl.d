lib/graph/permute.ml: Array Digraph Sf_prng
