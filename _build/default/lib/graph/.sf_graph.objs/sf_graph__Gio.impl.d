lib/graph/gio.ml: Buffer Digraph Fun In_channel List Printf String
