lib/graph/kcore.mli: Ugraph
