lib/graph/permute.mli: Digraph Sf_prng
