lib/graph/traversal.ml: Array Queue Sf_prng Ugraph
