lib/graph/clustering.ml: Hashtbl List Ugraph
