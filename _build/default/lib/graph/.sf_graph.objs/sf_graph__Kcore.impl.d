lib/graph/kcore.ml: Array Hashtbl List Ugraph
