type t = int array

let identity n = Array.init n (fun i -> i + 1)

let is_valid p =
  let n = Array.length p in
  let seen = Array.make n false in
  let ok = ref true in
  Array.iter
    (fun v ->
      if v < 1 || v > n || seen.(v - 1) then ok := false
      else seen.(v - 1) <- true)
    p;
  !ok

let apply_vertex p v =
  if v < 1 || v > Array.length p then invalid_arg "Permute.apply_vertex: out of range";
  p.(v - 1)

let compose s2 s1 =
  if Array.length s2 <> Array.length s1 then invalid_arg "Permute.compose: size mismatch";
  Array.init (Array.length s1) (fun i -> s2.(s1.(i) - 1))

let inverse p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i v -> inv.(v - 1) <- i + 1) p;
  inv

let transposition n u v =
  let p = identity n in
  if u < 1 || u > n || v < 1 || v > n then invalid_arg "Permute.transposition: out of range";
  p.(u - 1) <- v;
  p.(v - 1) <- u;
  p

let of_subrange_permutation ~n ~lo ~images =
  let k = Array.length images in
  if lo < 1 || lo + k - 1 > n then invalid_arg "Permute.of_subrange_permutation: window out of range";
  let p = identity n in
  Array.iteri
    (fun i img ->
      if img < lo || img > lo + k - 1 then invalid_arg "Permute.of_subrange_permutation: image outside window";
      p.(lo - 1 + i) <- img)
    images;
  if not (is_valid p) then invalid_arg "Permute.of_subrange_permutation: images not a permutation";
  p

let random_of_subrange rng ~n ~lo ~hi =
  if lo < 1 || hi > n || hi < lo then invalid_arg "Permute.random_of_subrange: bad window";
  let images = Array.init (hi - lo + 1) (fun i -> lo + i) in
  Sf_prng.Shuffle.in_place rng images;
  of_subrange_permutation ~n ~lo ~images

let apply sigma g =
  let n = Digraph.n_vertices g in
  if Array.length sigma <> n then invalid_arg "Permute.apply: size mismatch";
  if not (is_valid sigma) then invalid_arg "Permute.apply: not a permutation";
  let g' = Digraph.create ~expected_vertices:n () in
  Digraph.add_vertices g' n;
  Digraph.iter_edges g (fun e ->
      ignore
        (Digraph.add_edge g' ~src:sigma.(e.Digraph.src - 1) ~dst:sigma.(e.Digraph.dst - 1)));
  g'
