let to_edge_list g =
  let buf = Buffer.create (16 + (8 * Digraph.n_edges g)) in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Digraph.n_vertices g) (Digraph.n_edges g));
  Digraph.iter_edges g (fun e ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" e.Digraph.src e.Digraph.dst));
  Buffer.contents buf

let of_edge_list text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> failwith "Gio.of_edge_list: empty input"
  | header :: rest ->
    let n, m =
      match String.split_on_char ' ' header |> List.filter (( <> ) "") with
      | [ a; b ] -> (
        try (int_of_string a, int_of_string b)
        with _ -> failwith "Gio.of_edge_list: bad header")
      | _ -> failwith "Gio.of_edge_list: bad header"
    in
    let g = Digraph.create ~expected_vertices:n () in
    Digraph.add_vertices g n;
    List.iter
      (fun line ->
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ a; b ] -> (
          try ignore (Digraph.add_edge g ~src:(int_of_string a) ~dst:(int_of_string b))
          with _ -> failwith "Gio.of_edge_list: bad edge line")
        | _ -> failwith "Gio.of_edge_list: bad edge line")
      rest;
    if Digraph.n_edges g <> m then failwith "Gio.of_edge_list: edge count mismatch";
    g

let write_edge_list g ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_edge_list g))

let read_edge_list ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_edge_list (In_channel.input_all ic))

let to_dot ?(name = "g") ?(highlight = []) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  %d [style=filled, fillcolor=lightblue];\n" v))
    highlight;
  Digraph.iter_edges g (fun e ->
      Buffer.add_string buf (Printf.sprintf "  %d -> %d;\n" e.Digraph.src e.Digraph.dst));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
