(** Induced subgraphs with compact relabelling. *)

type mapping = { to_sub : int array; of_sub : int array }
(** [to_sub.(v-1)] is the new id of original vertex [v] (0 when
    dropped); [of_sub.(v'-1)] is the original id of new vertex [v']. *)

val induced : Digraph.t -> vertices:int list -> Digraph.t * mapping
(** Keep exactly the given vertices (relabelled [1..k] in ascending
    original order) and every edge whose two endpoints are kept.
    @raise Invalid_argument on out-of-range or duplicate vertices. *)

val largest_component : Digraph.t -> Digraph.t * mapping
(** Induced subgraph on a largest connected component of the
    undirected view. *)
