(** Growable arrays of unboxed [int]s.

    The adjacency structures append heavily while a graph grows; this is
    the usual doubling dynamic array, specialised to [int] to avoid
    boxing and [Obj] tricks. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool
val get : t -> int -> int
val set : t -> int -> int -> unit
val push : t -> int -> unit
val pop : t -> int
(** Remove and return the last element. @raise Invalid_argument if empty. *)

val clear : t -> unit
val iter : (int -> unit) -> t -> unit
val iteri : (int -> int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val exists : (int -> bool) -> t -> bool
val to_array : t -> int array
val to_list : t -> int list
val of_array : int array -> t
val copy : t -> t
