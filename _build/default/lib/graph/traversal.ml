type vertex = int

let bfs_tree g ~source =
  let n = Ugraph.n_vertices g in
  if not (Ugraph.mem_vertex g source) then invalid_arg "Traversal.bfs_tree: bad source";
  let dist = Array.make n (-1) and parent = Array.make n 0 in
  let queue = Queue.create () in
  dist.(source - 1) <- 0;
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Ugraph.iter_neighbors g u (fun v ->
        if dist.(v - 1) < 0 then begin
          dist.(v - 1) <- dist.(u - 1) + 1;
          parent.(v - 1) <- u;
          Queue.push v queue
        end)
  done;
  (dist, parent)

let bfs_distances g ~source = fst (bfs_tree g ~source)

let distance g ~src ~dst =
  let dist = bfs_distances g ~source:src in
  if dist.(dst - 1) < 0 then None else Some dist.(dst - 1)

let shortest_path g ~src ~dst =
  let dist, parent = bfs_tree g ~source:src in
  if dist.(dst - 1) < 0 then None
  else begin
    let rec walk v acc = if v = src then src :: acc else walk parent.(v - 1) (v :: acc) in
    Some (walk dst [])
  end

let connected_components g =
  let n = Ugraph.n_vertices g in
  let label = Array.make n (-1) in
  let next = ref 0 in
  for v = 1 to n do
    if label.(v - 1) < 0 then begin
      let c = !next in
      incr next;
      let queue = Queue.create () in
      label.(v - 1) <- c;
      Queue.push v queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Ugraph.iter_neighbors g u (fun w ->
            if label.(w - 1) < 0 then begin
              label.(w - 1) <- c;
              Queue.push w queue
            end)
      done
    end
  done;
  label

let component_sizes g =
  let label = connected_components g in
  let c = 1 + Array.fold_left max (-1) label in
  let sizes = Array.make (max c 0) 0 in
  Array.iter (fun l -> sizes.(l) <- sizes.(l) + 1) label;
  sizes

let largest_component g =
  let label = connected_components g in
  let sizes = component_sizes g in
  if Array.length sizes = 0 then []
  else begin
    let best = ref 0 in
    Array.iteri (fun i s -> if s > sizes.(!best) then best := i) sizes;
    let acc = ref [] in
    for v = Ugraph.n_vertices g downto 1 do
      if label.(v - 1) = !best then acc := v :: !acc
    done;
    !acc
  end

let is_connected g =
  let n = Ugraph.n_vertices g in
  n = 0 || Array.for_all (fun l -> l = 0) (connected_components g)

let eccentricity g v = Array.fold_left max 0 (bfs_distances g ~source:v)

let diameter_exact g =
  let label = connected_components g in
  let sizes = component_sizes g in
  if Array.length sizes = 0 then 0
  else begin
    let best = ref 0 in
    Array.iteri (fun i s -> if s > sizes.(!best) then best := i) sizes;
    let diam = ref 0 in
    for v = 1 to Ugraph.n_vertices g do
      if label.(v - 1) = !best then diam := max !diam (eccentricity g v)
    done;
    !diam
  end

let diameter_double_sweep g rng =
  let n = Ugraph.n_vertices g in
  if n = 0 then 0
  else begin
    let start = 1 + Sf_prng.Rng.int rng n in
    let dist1 = bfs_distances g ~source:start in
    let far = ref start in
    Array.iteri (fun i d -> if d > dist1.(!far - 1) then far := i + 1) dist1;
    eccentricity g !far
  end

let mean_distance_sampled g rng ~samples =
  let n = Ugraph.n_vertices g in
  if n <= 1 || samples <= 0 then 0.
  else begin
    let total = ref 0. and count = ref 0 in
    for _ = 1 to samples do
      let source = 1 + Sf_prng.Rng.int rng n in
      let dist = bfs_distances g ~source in
      Array.iter
        (fun d ->
          if d > 0 then begin
            total := !total +. float_of_int d;
            incr count
          end)
        dist
    done;
    if !count = 0 then 0. else !total /. float_of_int !count
  end
