let in_degrees g = Array.init (Digraph.n_vertices g) (fun i -> Digraph.in_degree g (i + 1))
let out_degrees g = Array.init (Digraph.n_vertices g) (fun i -> Digraph.out_degree g (i + 1))
let total_degrees g = Array.init (Digraph.n_vertices g) (fun i -> Digraph.degree g (i + 1))

let max_in_degree g = Array.fold_left max 0 (in_degrees g)
let max_total_degree g = Array.fold_left max 0 (total_degrees g)

let mean_degree g =
  let n = Digraph.n_vertices g in
  if n = 0 then 0. else 2. *. float_of_int (Digraph.n_edges g) /. float_of_int n

let degree_counts degrees =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun d ->
      let c = try Hashtbl.find tbl d with Not_found -> 0 in
      Hashtbl.replace tbl d (c + 1))
    degrees;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let degree_ccdf degrees =
  let n = Array.length degrees in
  if n = 0 then []
  else begin
    let counts = degree_counts degrees in
    (* Walk degrees in descending order accumulating the tail mass. *)
    let rev = List.rev counts in
    let _, acc =
      List.fold_left
        (fun (tail, acc) (d, c) ->
          let tail = tail + c in
          (tail, (d, float_of_int tail /. float_of_int n) :: acc))
        (0, []) rev
    in
    acc
  end

let self_loops g =
  Digraph.fold_edges g ~init:0 ~f:(fun acc e ->
      if e.Digraph.src = e.Digraph.dst then acc + 1 else acc)

let parallel_edges g =
  let tbl = Hashtbl.create (Digraph.n_edges g) in
  Digraph.fold_edges g ~init:0 ~f:(fun acc e ->
      let key = (min e.Digraph.src e.Digraph.dst, max e.Digraph.src e.Digraph.dst) in
      if Hashtbl.mem tbl key then acc + 1
      else begin
        Hashtbl.replace tbl key ();
        acc
      end)

let degree_sum_invariant g =
  Array.fold_left ( + ) 0 (total_degrees g) = 2 * Digraph.n_edges g
