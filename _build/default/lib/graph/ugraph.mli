(** Frozen undirected incidence view of a directed multigraph.

    The paper's graphs grow {e oriented}, but "searching always takes
    place in the corresponding unoriented graph". Searching also never
    mutates the graph, so this view is an immutable snapshot with
    O(1) incidence lookups — the structure the oracles and traversals
    operate on.

    Conventions:
    - edge ids are those of the underlying {!Digraph.t};
    - the incidence list of [v] contains each incident edge {e once},
      including self-loops (a self-loop at [v] is one handle whose far
      endpoint is [v] itself);
    - [degree v] is the length of that list. This is the degree a
      searcher observes: the number of distinct requests available at
      [v]. Use {!Digraph.degree} for the loop-counts-twice convention. *)

type vertex = int
type t

val of_digraph : Digraph.t -> t

val n_vertices : t -> int
val n_edges : t -> int

val degree : t -> vertex -> int

val incident : t -> vertex -> int array
(** Ids of the edges incident to [v], in insertion order. The returned
    array is owned by the view: do not mutate. *)

val endpoints : t -> int -> vertex * vertex
(** [(src, dst)] of the underlying directed edge. *)

val other_endpoint : t -> edge_id:int -> vertex -> vertex
(** The endpoint of [edge_id] that is not [v] (or [v] for a self-loop).
    @raise Invalid_argument if [v] is not an endpoint of the edge. *)

val iter_neighbors : t -> vertex -> (vertex -> unit) -> unit
(** Visits the far endpoint of every incident edge (with multiplicity;
    a self-loop visits [v] once). *)

val neighbors : t -> vertex -> vertex list

val max_degree : t -> int

val mem_vertex : t -> vertex -> bool
