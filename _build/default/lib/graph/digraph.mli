(** Growable directed multigraphs.

    This is the substrate every random-graph model grows into. Design
    constraints come straight from the paper's constructions:

    - vertices carry the identities [1 .. n] in insertion order (vertex
      [t] is "the t-th vertex inserted"), the object the searcher hunts;
    - parallel edges and self-loops are allowed — merging consecutive
      Móri-tree vertices creates both and they must be preserved;
    - graphs only grow (vertices and edges are never removed), so edge
      ids [0 .. m-1] are stable and double as insertion timestamps.

    All structural queries are O(1) or O(degree). *)

type vertex = int
(** External vertex ids are [1 .. n_vertices g]. *)

type edge = { id : int; src : vertex; dst : vertex }

type t

val create : ?expected_vertices:int -> unit -> t

val add_vertex : t -> vertex
(** Appends a fresh vertex and returns its id ([n_vertices] after the
    call). *)

val add_vertices : t -> int -> unit
(** [add_vertices g k] appends [k] fresh vertices. *)

val add_edge : t -> src:vertex -> dst:vertex -> edge
(** Appends a directed edge. Self-loops and duplicates are allowed.
    @raise Invalid_argument if either endpoint is not a vertex. *)

val n_vertices : t -> int
val n_edges : t -> int

val mem_vertex : t -> vertex -> bool

val edge : t -> int -> edge
(** Edge by id. @raise Invalid_argument if the id is out of range. *)

val out_degree : t -> vertex -> int
val in_degree : t -> vertex -> int

val degree : t -> vertex -> int
(** Total degree with the multigraph convention: a self-loop counts
    twice ([out_degree + in_degree]). *)

val out_edges : t -> vertex -> edge list
val in_edges : t -> vertex -> edge list

val iter_out_edges : t -> vertex -> (edge -> unit) -> unit
val iter_in_edges : t -> vertex -> (edge -> unit) -> unit

val iter_vertices : t -> (vertex -> unit) -> unit
val iter_edges : t -> (edge -> unit) -> unit
val fold_edges : t -> init:'a -> f:('a -> edge -> 'a) -> 'a

val edges : t -> edge list
(** All edges in insertion order. *)

val copy : t -> t

val of_edges : n:int -> (vertex * vertex) list -> t
(** [of_edges ~n pairs] builds the graph on vertices [1..n] with the
    given directed edges, in order. *)

val equal_structure : t -> t -> bool
(** Equality of labelled multigraphs: same vertex count and the same
    {e multiset} of directed edges (insertion order ignored). *)

val canonical_key : t -> string
(** A string that is equal for two graphs iff {!equal_structure} holds.
    Used to key empirical distributions over labelled graphs. *)
