type mapping = { to_sub : int array; of_sub : int array }

let induced g ~vertices =
  let n = Digraph.n_vertices g in
  let to_sub = Array.make n 0 in
  List.iter
    (fun v ->
      if v < 1 || v > n then invalid_arg "Subgraph.induced: vertex out of range";
      if to_sub.(v - 1) <> 0 then invalid_arg "Subgraph.induced: duplicate vertex";
      to_sub.(v - 1) <- 1)
    vertices;
  let k = ref 0 in
  for v = 1 to n do
    if to_sub.(v - 1) <> 0 then begin
      incr k;
      to_sub.(v - 1) <- !k
    end
  done;
  let of_sub = Array.make !k 0 in
  for v = 1 to n do
    if to_sub.(v - 1) <> 0 then of_sub.(to_sub.(v - 1) - 1) <- v
  done;
  let sub = Digraph.create ~expected_vertices:!k () in
  Digraph.add_vertices sub !k;
  Digraph.iter_edges g (fun e ->
      let s = to_sub.(e.Digraph.src - 1) and d = to_sub.(e.Digraph.dst - 1) in
      if s <> 0 && d <> 0 then ignore (Digraph.add_edge sub ~src:s ~dst:d));
  (sub, { to_sub; of_sub })

let largest_component g =
  let u = Ugraph.of_digraph g in
  induced g ~vertices:(Traversal.largest_component u)
