(* Simple (loop-free, multiplicity-free) degree per vertex. *)
let simple_degrees g =
  let n = Ugraph.n_vertices g in
  let deg = Array.make n 0 in
  for v = 1 to n do
    let tbl = Hashtbl.create 8 in
    Ugraph.iter_neighbors g v (fun u -> if u <> v then Hashtbl.replace tbl u ());
    deg.(v - 1) <- Hashtbl.length tbl
  done;
  deg

let edge_endpoint_degrees g =
  let deg = simple_degrees g in
  let acc = ref [] in
  for id = 0 to Ugraph.n_edges g - 1 do
    let u, v = Ugraph.endpoints g id in
    if u <> v then acc := (deg.(u - 1), deg.(v - 1)) :: !acc
  done;
  !acc

let assortativity g =
  (* Newman 2002, eq. (4): Pearson correlation over edges, symmetrised
     by treating each edge in both orientations. *)
  let pairs = edge_endpoint_degrees g in
  let m = List.length pairs in
  if m = 0 then 0.
  else begin
    let fm = float_of_int (2 * m) in
    let sum_x = ref 0. and sum_xx = ref 0. and sum_xy = ref 0. in
    List.iter
      (fun (a, b) ->
        let fa = float_of_int a and fb = float_of_int b in
        sum_x := !sum_x +. fa +. fb;
        sum_xx := !sum_xx +. (fa *. fa) +. (fb *. fb);
        sum_xy := !sum_xy +. (2. *. fa *. fb))
      pairs;
    let mean = !sum_x /. fm in
    let var = (!sum_xx /. fm) -. (mean *. mean) in
    if var <= 0. then 0. else ((!sum_xy /. fm) -. (mean *. mean)) /. var
  end

let knn_curve g =
  let deg = simple_degrees g in
  let sums = Hashtbl.create 32 in
  let add d nbr_deg =
    let s, c = try Hashtbl.find sums d with Not_found -> (0., 0) in
    Hashtbl.replace sums d (s +. float_of_int nbr_deg, c + 1)
  in
  for id = 0 to Ugraph.n_edges g - 1 do
    let u, v = Ugraph.endpoints g id in
    if u <> v then begin
      add deg.(u - 1) deg.(v - 1);
      add deg.(v - 1) deg.(u - 1)
    end
  done;
  Hashtbl.fold (fun d (s, c) acc -> (d, s /. float_of_int c) :: acc) sums []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let knn_slope g =
  let points =
    knn_curve g
    |> List.filter_map (fun (d, knn) ->
           if d > 0 && knn > 0. then Some (float_of_int d, knn) else None)
  in
  if List.length points < 2 then 0.
  else
    try (Sf_stats.Regression.log_log points).Sf_stats.Regression.slope
    with Invalid_argument _ -> 0.

(* Spearman: rank both sequences (mean ranks on ties), Pearson on
   ranks. *)
let ranks xs =
  let n = Array.length xs in
  let order = Array.init n Fun.id in
  Array.sort (fun i j -> compare xs.(i) xs.(j)) order;
  let rank = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j < n && xs.(order.(!j)) = xs.(order.(!i)) do
      incr j
    done;
    (* positions !i .. !j-1 share the mean rank *)
    let mean_rank = float_of_int (!i + !j - 1) /. 2. in
    for k = !i to !j - 1 do
      rank.(order.(k)) <- mean_rank
    done;
    i := !j
  done;
  rank

let pearson xs ys =
  let n = Array.length xs in
  let fn = float_of_int n in
  let mean a = Array.fold_left ( +. ) 0. a /. fn in
  let mx = mean xs and my = mean ys in
  let cov = ref 0. and vx = ref 0. and vy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    cov := !cov +. (dx *. dy);
    vx := !vx +. (dx *. dx);
    vy := !vy +. (dy *. dy)
  done;
  if !vx <= 0. || !vy <= 0. then 0. else !cov /. sqrt (!vx *. !vy)

let age_degree_spearman g =
  let n = Ugraph.n_vertices g in
  if n < 2 then 0.
  else begin
    let ids = Array.init n (fun i -> i + 1) in
    let deg = simple_degrees g in
    pearson (ranks ids) (ranks deg)
  end
