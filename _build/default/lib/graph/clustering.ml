let simple_neighbors g v =
  (* distinct neighbours, self excluded *)
  let tbl = Hashtbl.create 8 in
  Ugraph.iter_neighbors g v (fun u -> if u <> v then Hashtbl.replace tbl u ());
  tbl

let local_coefficient g v =
  let nbrs = simple_neighbors g v in
  let d = Hashtbl.length nbrs in
  if d < 2 then 0.
  else begin
    let adjacent u w =
      let found = ref false in
      Ugraph.iter_neighbors g u (fun x -> if x = w then found := true);
      !found
    in
    let nbr_list = Hashtbl.fold (fun u () acc -> u :: acc) nbrs [] in
    let closed = ref 0 and total = ref 0 in
    let rec pairs = function
      | [] -> ()
      | u :: rest ->
        List.iter
          (fun w ->
            incr total;
            if adjacent u w then incr closed)
          rest;
        pairs rest
    in
    pairs nbr_list;
    float_of_int !closed /. float_of_int !total
  end

let average_local g =
  let n = Ugraph.n_vertices g in
  if n = 0 then 0.
  else begin
    let sum = ref 0. in
    for v = 1 to n do
      sum := !sum +. local_coefficient g v
    done;
    !sum /. float_of_int n
  end

let triangle_count g =
  (* Count each triangle once via the ordered-vertex convention
     u < v < w, iterating over the middle vertex's neighbour pairs. *)
  let count = ref 0 in
  for v = 1 to Ugraph.n_vertices g do
    let nbrs = simple_neighbors g v in
    let smaller = Hashtbl.fold (fun u () acc -> if u < v then u :: acc else acc) nbrs [] in
    let larger = Hashtbl.fold (fun w () acc -> if w > v then w :: acc else acc) nbrs [] in
    List.iter
      (fun u ->
        let u_nbrs = simple_neighbors g u in
        List.iter (fun w -> if Hashtbl.mem u_nbrs w then incr count) larger)
      smaller
  done;
  !count

let global_transitivity g =
  let wedges = ref 0 in
  for v = 1 to Ugraph.n_vertices g do
    let d = Hashtbl.length (simple_neighbors g v) in
    wedges := !wedges + (d * (d - 1) / 2)
  done;
  if !wedges = 0 then 0.
  else 3. *. float_of_int (triangle_count g) /. float_of_int !wedges
