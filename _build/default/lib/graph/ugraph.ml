type vertex = int

type t = {
  srcs : int array; (* edge id -> src *)
  dsts : int array; (* edge id -> dst *)
  incidence : int array array; (* vertex-1 -> incident edge ids *)
}

let of_digraph g =
  let m = Digraph.n_edges g and n = Digraph.n_vertices g in
  let srcs = Array.make m 0 and dsts = Array.make m 0 in
  let counts = Array.make n 0 in
  for id = 0 to m - 1 do
    let e = Digraph.edge g id in
    srcs.(id) <- e.Digraph.src;
    dsts.(id) <- e.Digraph.dst;
    counts.(e.Digraph.src - 1) <- counts.(e.Digraph.src - 1) + 1;
    if e.Digraph.dst <> e.Digraph.src then counts.(e.Digraph.dst - 1) <- counts.(e.Digraph.dst - 1) + 1
  done;
  let incidence = Array.init n (fun i -> Array.make counts.(i) 0) in
  let fill = Array.make n 0 in
  for id = 0 to m - 1 do
    let s = srcs.(id) - 1 and d = dsts.(id) - 1 in
    incidence.(s).(fill.(s)) <- id;
    fill.(s) <- fill.(s) + 1;
    if d <> s then begin
      incidence.(d).(fill.(d)) <- id;
      fill.(d) <- fill.(d) + 1
    end
  done;
  { srcs; dsts; incidence }

let n_vertices t = Array.length t.incidence
let n_edges t = Array.length t.srcs
let mem_vertex t v = v >= 1 && v <= n_vertices t

let check_vertex t v name =
  if not (mem_vertex t v) then invalid_arg ("Ugraph." ^ name ^ ": vertex out of range")

let degree t v =
  check_vertex t v "degree";
  Array.length t.incidence.(v - 1)

let incident t v =
  check_vertex t v "incident";
  t.incidence.(v - 1)

let endpoints t id =
  if id < 0 || id >= n_edges t then invalid_arg "Ugraph.endpoints: edge id out of range";
  (t.srcs.(id), t.dsts.(id))

let other_endpoint t ~edge_id v =
  let s, d = endpoints t edge_id in
  if v = s then d
  else if v = d then s
  else invalid_arg "Ugraph.other_endpoint: vertex is not an endpoint"

let iter_neighbors t v f =
  Array.iter (fun id -> f (other_endpoint t ~edge_id:id v)) (incident t v)

let neighbors t v =
  let acc = ref [] in
  iter_neighbors t v (fun u -> acc := u :: !acc);
  List.rev !acc

let max_degree t = Array.fold_left (fun acc inc -> max acc (Array.length inc)) 0 t.incidence
