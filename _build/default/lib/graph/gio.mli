(** Serialisation of graphs: a plain edge-list text format and GraphViz
    DOT output.

    Edge-list format: first line [n m]; then one [src dst] pair per
    line, in edge-insertion order (so a round trip preserves edge ids
    and timestamps). *)

val to_edge_list : Digraph.t -> string

val of_edge_list : string -> Digraph.t
(** @raise Failure on malformed input. *)

val write_edge_list : Digraph.t -> path:string -> unit
val read_edge_list : path:string -> Digraph.t

val to_dot : ?name:string -> ?highlight:int list -> Digraph.t -> string
(** Directed DOT rendering; [highlight] vertices are filled. Intended
    for small demo graphs. *)
