type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 8) () = { data = Array.make (max 1 capacity) 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let check t i name = if i < 0 || i >= t.len then invalid_arg ("Vec." ^ name ^ ": index out of bounds")

let get t i =
  check t i "get";
  Array.unsafe_get t.data i

let set t i v =
  check t i "set";
  Array.unsafe_set t.data i v

let push t v =
  if t.len = Array.length t.data then begin
    let data' = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 data' 0 t.len;
    t.data <- data'
  end;
  Array.unsafe_set t.data t.len v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Vec.pop: empty";
  t.len <- t.len - 1;
  Array.unsafe_get t.data t.len

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (Array.unsafe_get t.data i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (Array.unsafe_get t.data i)
  done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p (Array.unsafe_get t.data i) || go (i + 1)) in
  go 0

let to_array t = Array.sub t.data 0 t.len
let to_list t = Array.to_list (to_array t)

let of_array a =
  let t = create ~capacity:(max 1 (Array.length a)) () in
  Array.iter (push t) a;
  t

let copy t = { data = Array.copy t.data; len = t.len }
