(** Breadth-first traversals and distance machinery on the undirected
    view.

    Everything here treats the graph as unoriented, matching the
    paper's searching semantics, and runs in O(n + m). *)

type vertex = int

val bfs_distances : Ugraph.t -> source:vertex -> int array
(** [dist.(v-1)] is the hop distance from [source] to [v], or [-1] if
    unreachable. *)

val bfs_tree : Ugraph.t -> source:vertex -> int array * int array
(** [(dist, parent)] where [parent.(v-1)] is the BFS predecessor of [v]
    ([0] for the source and unreachable vertices). *)

val shortest_path : Ugraph.t -> src:vertex -> dst:vertex -> vertex list option
(** Vertices of one shortest path, source first. *)

val distance : Ugraph.t -> src:vertex -> dst:vertex -> int option

val connected_components : Ugraph.t -> int array
(** Component labels in [0 .. c-1] per vertex, by discovery order. *)

val component_sizes : Ugraph.t -> int array

val largest_component : Ugraph.t -> vertex list
(** Vertices of a largest connected component. *)

val is_connected : Ugraph.t -> bool

val eccentricity : Ugraph.t -> vertex -> int
(** Max distance from the vertex within its component. *)

val diameter_exact : Ugraph.t -> int
(** Exact diameter of the largest component: all-sources BFS, O(nm) —
    for small graphs and tests. *)

val diameter_double_sweep : Ugraph.t -> Sf_prng.Rng.t -> int
(** Classic lower-bound estimate: BFS from a random vertex, then from
    the farthest vertex found; returns that second eccentricity.
    Exact on trees. *)

val mean_distance_sampled : Ugraph.t -> Sf_prng.Rng.t -> samples:int -> float
(** Average pairwise hop distance estimated from BFS at sampled
    sources (within the sampled source's component). *)
