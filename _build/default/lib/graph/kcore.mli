(** k-core decomposition (Batagelj–Zaveršnik peeling, O(n + m)).

    The coreness of a vertex is the largest k such that it belongs to a
    subgraph of minimum degree k. In power-law P2P networks the
    high-core "spine" is what walks and percolation queries concentrate
    on; trees are entirely 1-core. Degrees here count loops once and
    parallel edges with multiplicity (the {!Ugraph.degree}
    convention). *)

val coreness : Ugraph.t -> int array
(** [a.(v-1)] = coreness of [v]. *)

val degeneracy : Ugraph.t -> int
(** The maximum coreness (0 for edgeless graphs). *)

val core_sizes : Ugraph.t -> (int * int) list
(** [(k, number of vertices with coreness exactly k)], ascending. *)

val k_core : Ugraph.t -> k:int -> int list
(** Vertices with coreness ≥ k, ascending. *)
