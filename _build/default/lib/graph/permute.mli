(** Permutations of vertex labels and their action on graphs.

    The paper's equivalence technique (Definition 1/2) rests on the
    action [σ(G)]: relabel every endpoint of every edge by [σ]. A
    permutation here is an [int array] [p] of length [n] with
    [p.(v-1) = σ(v)], a bijection of [1..n]. *)

type t = int array

val identity : int -> t

val is_valid : t -> bool
(** Checks bijectivity onto [1 .. length]. *)

val apply_vertex : t -> int -> int

val compose : t -> t -> t
(** [compose s2 s1] is [σ2 ∘ σ1] (apply [s1] first). *)

val inverse : t -> t

val transposition : int -> int -> int -> t
(** [transposition n u v] swaps [u] and [v], fixing the rest of
    [1..n]. *)

val of_subrange_permutation : n:int -> lo:int -> images:int array -> t
(** Permutation of [1..n] that fixes everything outside [lo .. lo+k-1]
    and maps [lo+i] to [images.(i)], where [images] is a permutation of
    the same window. Exactly the [σ ∈ S_V] of Lemma 2 with
    [V = \[lo, lo+k-1\]]. *)

val random_of_subrange : Sf_prng.Rng.t -> n:int -> lo:int -> hi:int -> t
(** Uniform permutation of the window [lo..hi], fixing the rest. *)

val apply : t -> Digraph.t -> Digraph.t
(** [apply sigma g] is σ(G): same vertex set, every edge [(u,v)]
    becomes [(σu, σv)]. Edge insertion order is preserved, so edge ids
    still equal insertion timestamps.
    @raise Invalid_argument if sizes disagree or σ is not valid. *)
