(** Degree–degree correlations.

    The paper's central modelling point: in evolving graphs "the
    degrees of neighbours are not independent, and mean-field analysis
    of the models tends to give incorrect results", whereas in pure
    (configuration-model) random graphs they are asymptotically
    independent. These statistics make that difference measurable:

    - {!assortativity}: Newman's degree assortativity coefficient, the
      Pearson correlation of degrees across edges (0 for neutral
      graphs, negative when hubs attach to leaves);
    - {!knn_curve}: the mean degree of neighbours of degree-d vertices
      (flat iff uncorrelated);
    - {!age_degree_correlation}: Spearman correlation of a vertex's
      insertion rank with its degree — the age–degree coupling
      specific to evolving models.

    All statistics use the undirected view with the loop-free simple
    degree. *)

val assortativity : Ugraph.t -> float
(** Newman's r ∈ [-1, 1]; 0 when the graph has no edges between
    distinct vertices or zero excess-degree variance. *)

val knn_curve : Ugraph.t -> (int * float) list
(** [(d, mean neighbour degree over endpoints of degree d)],
    ascending in [d]; only degrees that occur are listed. *)

val knn_slope : Ugraph.t -> float
(** Slope of the log–log fit of {!knn_curve} (0 ≈ uncorrelated,
    < 0 disassortative); 0 when fewer than two curve points exist. *)

val age_degree_spearman : Ugraph.t -> float
(** Spearman rank correlation between vertex id (insertion time:
    small = old) and degree. Strongly negative for evolving models
    (old vertices rich), ~0 for configuration-model graphs. *)
