(** Discrete power-law tail fitting (Clauset–Shalizi–Newman style),
    used to check that the generators actually produce the scale-free
    degree laws the paper relies on (exponent in [2, 3], Móri exponent
    [1 + 2/p]).

    The model: [P(X = x) = x^-alpha / ζ(alpha, x_min)] for
    [x >= x_min], with [ζ] the Hurwitz zeta function. *)

type fit = {
  alpha : float; (** fitted exponent *)
  x_min : int; (** tail cutoff used *)
  n_tail : int; (** sample points in the tail *)
  ks : float; (** Kolmogorov–Smirnov distance of the fit *)
}

val hurwitz_zeta : alpha:float -> q:float -> float
(** [Σ_{k≥0} (q + k)^-alpha], for [alpha > 1], [q > 0]; Euler–Maclaurin
    tail correction, accurate to ~1e-10. *)

val mle_alpha : int array -> x_min:int -> float
(** Exact discrete maximum-likelihood exponent: maximises
    [-α Σ log xᵢ - n log ζ(α, x_min)] (golden-section search on the
    concave log-likelihood). Unbiased even for [x_min = 1], where the
    continuous approximation is badly off.
    @raise Invalid_argument if no sample point reaches [x_min]. *)

val mle_alpha_approx : int array -> x_min:int -> float
(** The usual continuous approximation
    [1 + n / Σ ln(x_i / (x_min - 1/2))] — cheap, and accurate only for
    larger [x_min]; kept for comparison. *)

val fit : int array -> x_min:int -> fit
(** MLE exponent plus the KS distance between the empirical tail CDF
    and the fitted zeta model. *)

val fit_scan : int array -> ?x_min_candidates:int list -> unit -> fit
(** Choose [x_min] among the candidates (default: all distinct sample
    values up to the 90th percentile) minimising the KS distance —
    the CSN recipe. *)
