let of_int_array xs = Array.map float_of_int xs

let quantile_sorted sorted ~q =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let check xs q =
  if Array.length xs = 0 then invalid_arg "Quantile: empty sample";
  if q < 0. || q > 1. then invalid_arg "Quantile: q outside [0, 1]"

let quantile xs ~q =
  check xs q;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  quantile_sorted sorted ~q

let median xs = quantile xs ~q:0.5

let quantiles xs ~qs =
  List.iter (fun q -> check xs q) qs;
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  List.map (fun q -> quantile_sorted sorted ~q) qs

let iqr xs =
  match quantiles xs ~qs:[ 0.25; 0.75 ] with
  | [ a; b ] -> b -. a
  | _ -> assert false
