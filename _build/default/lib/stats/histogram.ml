type bin = { lo : float; hi : float; count : int; density : float }

let finish ~n bins_rev =
  List.rev_map
    (fun (lo, hi, count) ->
      let width = hi -. lo in
      let density =
        if width <= 0. || n = 0 then 0.
        else float_of_int count /. (float_of_int n *. width)
      in
      { lo; hi; count; density })
    bins_rev

let linear xs ~bins =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Histogram.linear: empty sample";
  if bins < 1 then invalid_arg "Histogram.linear: need bins >= 1";
  let lo = float_of_int (Array.fold_left min xs.(0) xs) in
  let hi = float_of_int (Array.fold_left max xs.(0) xs) +. 1. in
  let width = (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = min (bins - 1) (int_of_float ((float_of_int x -. lo) /. width)) in
      counts.(i) <- counts.(i) + 1)
    xs;
  let acc = ref [] in
  for i = bins - 1 downto 0 do
    let blo = lo +. (float_of_int i *. width) in
    acc := (blo, blo +. width, counts.(i)) :: !acc
  done;
  finish ~n (List.rev !acc)

let logarithmic xs ?(base = 2.0) () =
  if base <= 1. then invalid_arg "Histogram.logarithmic: need base > 1";
  let positive = Array.of_seq (Seq.filter (fun x -> x > 0) (Array.to_seq xs)) in
  let n = Array.length positive in
  if n = 0 then invalid_arg "Histogram.logarithmic: no positive values";
  let max_v = float_of_int (Array.fold_left max 1 positive) in
  let n_bins =
    let rec go lo k = if lo > max_v then k else go (lo *. base) (k + 1) in
    go 1. 0
  in
  let counts = Array.make n_bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float (Float.floor (log (float_of_int x) /. log base)) in
      let i = min (n_bins - 1) (max 0 i) in
      counts.(i) <- counts.(i) + 1)
    positive;
  let acc = ref [] in
  for i = n_bins - 1 downto 0 do
    let lo = base ** float_of_int i in
    acc := (lo, lo *. base, counts.(i)) :: !acc
  done;
  finish ~n (List.rev !acc)

let ccdf xs =
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let tbl = Hashtbl.create 64 in
    Array.iter
      (fun x ->
        let c = try Hashtbl.find tbl x with Not_found -> 0 in
        Hashtbl.replace tbl x (c + 1))
      xs;
    let distinct =
      Hashtbl.fold (fun x c acc -> (x, c) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare b a)
    in
    let _, acc =
      List.fold_left
        (fun (tail, acc) (x, c) ->
          let tail = tail + c in
          (tail, (x, float_of_int tail /. float_of_int n) :: acc))
        (0, []) distinct
    in
    acc
  end

let render ?(width = 50) bins =
  let max_count = List.fold_left (fun acc b -> max acc b.count) 1 bins in
  let buf = Buffer.create 256 in
  List.iter
    (fun b ->
      let bar_len = b.count * width / max_count in
      Buffer.add_string buf
        (Printf.sprintf "[%10.1f, %10.1f) %8d %s\n" b.lo b.hi b.count
           (String.make bar_len '#')))
    bins;
  Buffer.contents buf
