(** Least-squares line fitting, including the log–log fits that turn
    measured (n, cost) series into scaling exponents — the statistic
    every lower-bound experiment reports. *)

type fit = {
  slope : float;
  intercept : float;
  r_squared : float;
  n_points : int;
  slope_std_error : float;
}

val linear : (float * float) list -> fit
(** Ordinary least squares of [y] on [x].
    @raise Invalid_argument with fewer than two distinct x values. *)

val log_log : (float * float) list -> fit
(** OLS of [log y] on [log x]; [slope] is then the scaling exponent of
    the power law [y ≈ C·x^slope]. Points with non-positive
    coordinates are rejected. *)

val power_fit_constant : fit -> float
(** The multiplicative constant [C = exp intercept] of a {!log_log}
    fit. *)

val predict : fit -> float -> float
(** [predict fit x] for a {!linear} fit; for a {!log_log} fit apply to
    [log x] and exponentiate, or use {!predict_power}. *)

val predict_power : fit -> float -> float
(** [C·x^slope] for a {!log_log} fit. *)
