type fit = {
  slope : float;
  intercept : float;
  r_squared : float;
  n_points : int;
  slope_std_error : float;
}

let linear points =
  let n = List.length points in
  if n < 2 then invalid_arg "Regression.linear: need at least two points";
  let fn = float_of_int n in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0. points in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0. points in
  let mx = sx /. fn and my = sy /. fn in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. ((x -. mx) *. (x -. mx))) 0. points in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. ((x -. mx) *. (y -. my))) 0. points in
  let syy = List.fold_left (fun acc (_, y) -> acc +. ((y -. my) *. (y -. my))) 0. points in
  if sxx = 0. then invalid_arg "Regression.linear: all x values identical";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let ss_res =
    List.fold_left
      (fun acc (x, y) ->
        let e = y -. (intercept +. (slope *. x)) in
        acc +. (e *. e))
      0. points
  in
  let r_squared = if syy = 0. then 1. else 1. -. (ss_res /. syy) in
  let slope_std_error =
    if n <= 2 then 0. else sqrt (ss_res /. (fn -. 2.) /. sxx)
  in
  { slope; intercept; r_squared; n_points = n; slope_std_error }

let log_log points =
  let logged =
    List.map
      (fun (x, y) ->
        if x <= 0. || y <= 0. then
          invalid_arg "Regression.log_log: coordinates must be positive";
        (log x, log y))
      points
  in
  linear logged

let power_fit_constant fit = exp fit.intercept
let predict fit x = fit.intercept +. (fit.slope *. x)
let predict_power fit x = power_fit_constant fit *. (x ** fit.slope)
