(** Histograms for heavy-tailed integer samples: linear bins,
    logarithmic bins (the standard way to render power-law degree
    data) and empirical CCDFs. *)

type bin = { lo : float; hi : float; count : int; density : float }
(** [density] is count divided by (sample size × bin width), so
    densities integrate to 1. *)

val linear : int array -> bins:int -> bin list
(** Equal-width bins spanning the sample range.
    @raise Invalid_argument on empty samples or [bins < 1]. *)

val logarithmic : int array -> ?base:float -> unit -> bin list
(** Bins with geometrically growing widths ([base] defaults to 2.0),
    starting at 1; zero values are dropped (log bins cannot hold
    them). *)

val ccdf : int array -> (int * float) list
(** [(x, P(X >= x))] at every distinct sample value, ascending. *)

val render : ?width:int -> bin list -> string
(** ASCII bar rendering for quick terminal inspection. *)
