type align = Left | Right

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else begin
    let fill = String.make (width - len) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let normalize_aligns a n =
  let len = List.length a in
  if len >= n then a else a @ List.init (n - len) (fun _ -> Right)

let render ?aligns ~headers ~rows () =
  let n_cols =
    List.fold_left (fun acc row -> max acc (List.length row)) (List.length headers) rows
  in
  let normalize row =
    row @ List.init (n_cols - List.length row) (fun _ -> "")
  in
  let headers = normalize headers in
  let rows = List.map normalize rows in
  let aligns =
    match aligns with
    | Some a -> normalize_aligns a n_cols
    | None -> List.init n_cols (fun _ -> Right)
  and widths =
    List.init n_cols (fun c ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row c)))
          (String.length (List.nth headers c))
          rows)
  in
  let line row =
    String.concat "  " (List.mapi (fun c cell -> pad (List.nth aligns c) (List.nth widths c) cell) row)
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" ((line headers :: rule :: List.map line rows) @ [ "" ])

let fmt_float ?(digits = 3) x =
  if Float.is_nan x then "nan"
  else if x = infinity then "inf"
  else if x = neg_infinity then "-inf"
  else Printf.sprintf "%.*f" digits x

let fmt_sci x = Printf.sprintf "%.3g" x

let fmt_int_grouped n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf '_';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
