(** ASCII scatter plots — the harness's way of rendering the paper's
    "figures" (scaling curves) directly in terminal output.

    Multiple labelled series share one canvas; each series draws with
    its own glyph, and collisions show the later series' glyph. Axes
    can be logarithmic, which is how every scaling figure here is
    read: straight lines are power laws, and their slopes are the
    exponents the experiments fit numerically. *)

type series = {
  label : string;
  glyph : char;
  points : (float * float) list;
}

val render :
  ?width:int ->
  ?height:int ->
  ?x_log:bool ->
  ?y_log:bool ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** Canvas defaults: 64 × 20 characters, linear axes. Non-positive
    points are dropped on logarithmic axes. Returns a printable block
    including axis ranges and the legend; degenerate inputs (no
    plottable points) render an explanatory placeholder. *)

val default_glyphs : char array
(** Cycle of glyphs for building series lists: [*], [+], [o], [x], …. *)
