(** Streaming univariate summaries (Welford accumulation) and
    normal-approximation confidence intervals. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit
val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two points. *)

val stddev : t -> float
val std_error : t -> float
(** Standard error of the mean. *)

val min_value : t -> float
val max_value : t -> float
val total : t -> float

val ci95 : t -> float * float
(** Normal-approximation 95% confidence interval for the mean. *)

val ci95_halfwidth : t -> float

val merge : t -> t -> t
(** Summary of the union of the two samples. *)

val of_array : float array -> t
val of_int_array : int array -> t
