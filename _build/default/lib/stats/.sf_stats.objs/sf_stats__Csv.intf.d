lib/stats/csv.mli:
