lib/stats/quantile.mli:
