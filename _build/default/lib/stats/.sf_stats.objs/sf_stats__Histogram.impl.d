lib/stats/histogram.ml: Array Buffer Float Hashtbl List Printf Seq String
