lib/stats/csv.ml: Buffer Fun In_channel List String
