lib/stats/tests.ml: Array Float Hashtbl List
