lib/stats/regression.mli:
