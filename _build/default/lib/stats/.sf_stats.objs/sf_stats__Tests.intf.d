lib/stats/tests.mli:
