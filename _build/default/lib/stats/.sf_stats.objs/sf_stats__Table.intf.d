lib/stats/table.mli:
