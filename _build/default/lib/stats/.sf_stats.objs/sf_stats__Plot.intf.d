lib/stats/plot.mli:
