lib/stats/summary.ml: Array
