lib/stats/histogram.mli:
