lib/stats/summary.mli:
