lib/stats/power_law.mli:
