lib/stats/power_law.ml: Array Float Hashtbl List Seq
