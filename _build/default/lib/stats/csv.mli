(** Minimal CSV writing and parsing (RFC-4180 quoting) — the data
    export path for experiment tables and search traces, so results
    can leave the harness for external plotting. *)

val escape_field : string -> string
(** Quote a field iff it contains a comma, quote or newline. *)

val to_string : header:string list -> rows:string list list -> string
(** Render with CRLF-free line endings (plain [\n]); short rows are
    padded to the header width. *)

val write : path:string -> header:string list -> rows:string list list -> unit

val parse : string -> string list list
(** Parse CSV text (handles quoted fields with embedded commas,
    quotes and newlines). The header line, if any, is returned as the
    first row. @raise Failure on unterminated quotes. *)

val parse_file : path:string -> string list list
