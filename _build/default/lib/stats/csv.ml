let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape_field s =
  if not (needs_quoting s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_string ~header ~rows =
  let width = List.length header in
  let render_row row =
    let padded = row @ List.init (max 0 (width - List.length row)) (fun _ -> "") in
    String.concat "," (List.map escape_field padded)
  in
  String.concat "\n" (render_row header :: List.map render_row rows) ^ "\n"

let write ~path ~header ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~header ~rows))

let parse text =
  let rows = ref [] and fields = ref [] in
  let buf = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let len = String.length text in
  let i = ref 0 in
  let in_quotes = ref false in
  let row_started = ref false in
  while !i < len do
    let c = text.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < len && text.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          incr i
        end
        else in_quotes := false
      else Buffer.add_char buf c
    end
    else begin
      match c with
      | '"' -> in_quotes := true
      | ',' ->
        row_started := true;
        flush_field ()
      | '\n' ->
        if !row_started || Buffer.length buf > 0 || !fields <> [] then flush_row ();
        row_started := false
      | '\r' -> ()
      | c ->
        row_started := true;
        Buffer.add_char buf c
    end;
    incr i
  done;
  if !in_quotes then failwith "Csv.parse: unterminated quoted field";
  if !row_started || Buffer.length buf > 0 || !fields <> [] then flush_row ();
  List.rev !rows

let parse_file ~path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> parse (In_channel.input_all ic))
