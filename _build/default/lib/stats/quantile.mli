(** Exact quantiles of in-memory samples (linear-interpolation
    definition, type 7 / the numpy default). *)

val quantile : float array -> q:float -> float
(** [quantile xs ~q] for [0 <= q <= 1]; sorts a copy.
    @raise Invalid_argument on an empty sample or q outside [0,1]. *)

val median : float array -> float

val quantiles : float array -> qs:float list -> float list
(** One sort, many quantiles. *)

val iqr : float array -> float
(** Interquartile range. *)

val of_int_array : int array -> float array
