(** ASCII tables — the output format of every experiment in the bench
    harness. *)

type align = Left | Right

val render :
  ?aligns:align list -> headers:string list -> rows:string list list -> unit -> string
(** Column-sized table with a header rule. [aligns] defaults to Right
    for every column; short rows are padded with empty cells. *)

val fmt_float : ?digits:int -> float -> string
(** Fixed-point with [digits] decimals (default 3); infinities and NaN
    spelled out. *)

val fmt_sci : float -> string
(** Scientific notation with 3 significant digits. *)

val fmt_int_grouped : int -> string
(** Thousands separated by underscores: [1_234_567]. *)
