type series = { label : string; glyph : char; points : (float * float) list }

let default_glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let render ?(width = 64) ?(height = 20) ?(x_log = false) ?(y_log = false) ?(x_label = "x")
    ?(y_label = "y") series_list =
  let width = max 8 width and height = max 4 height in
  let transform log v = if log then log10 v else v in
  let usable (x, y) = (not (x_log && x <= 0.)) && not (y_log && y <= 0.) in
  let all_points =
    List.concat_map
      (fun s -> List.filter usable s.points |> List.map (fun (x, y) -> (transform x_log x, transform y_log y)))
      series_list
  in
  match all_points with
  | [] -> "(no plottable points)\n"
  | (x0, y0) :: rest ->
    let x_min, x_max, y_min, y_max =
      List.fold_left
        (fun (xl, xh, yl, yh) (x, y) ->
          (Float.min xl x, Float.max xh x, Float.min yl y, Float.max yh y))
        (x0, x0, y0, y0) rest
    in
    (* pad degenerate ranges so single points still land on canvas *)
    let pad lo hi = if hi -. lo < 1e-12 then (lo -. 1., hi +. 1.) else (lo, hi) in
    let x_min, x_max = pad x_min x_max and y_min, y_max = pad y_min y_max in
    let canvas = Array.make_matrix height width ' ' in
    let place glyph (x, y) =
      let col =
        int_of_float (Float.round ((x -. x_min) /. (x_max -. x_min) *. float_of_int (width - 1)))
      in
      let row =
        int_of_float (Float.round ((y -. y_min) /. (y_max -. y_min) *. float_of_int (height - 1)))
      in
      canvas.(height - 1 - row).(col) <- glyph
    in
    List.iter
      (fun s ->
        List.iter
          (fun pt ->
            if usable pt then
              place s.glyph (transform x_log (fst pt), transform y_log (snd pt)))
          s.points)
      series_list;
    let buf = Buffer.create (width * height * 2) in
    let axis_value log v = if log then 10. ** v else v in
    Buffer.add_string buf
      (Printf.sprintf "%s%s in [%.3g, %.3g]%s\n" y_label
         (if y_log then " (log)" else "")
         (axis_value y_log y_min) (axis_value y_log y_max)
         "");
    Array.iter
      (fun row ->
        Buffer.add_string buf "| ";
        Buffer.add_string buf (String.init width (fun i -> row.(i)));
        Buffer.add_char buf '\n')
      canvas;
    Buffer.add_string buf ("+-" ^ String.make width '-' ^ "\n");
    Buffer.add_string buf
      (Printf.sprintf "%s%s in [%.3g, %.3g]   legend: %s\n" x_label
         (if x_log then " (log)" else "")
         (axis_value x_log x_min) (axis_value x_log x_max)
         (String.concat ", "
            (List.map (fun s -> Printf.sprintf "%c = %s" s.glyph s.label) series_list)));
    Buffer.contents buf
