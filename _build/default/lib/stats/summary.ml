type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations (Welford) *)
  mutable lo : float;
  mutable hi : float;
  mutable sum : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; lo = infinity; hi = neg_infinity; sum = 0. }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x;
  t.sum <- t.sum +. x

let add_int t x = add t (float_of_int x)

let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let std_error t = if t.n = 0 then 0. else stddev t /. sqrt (float_of_int t.n)
let min_value t = t.lo
let max_value t = t.hi
let total t = t.sum

let ci95_halfwidth t = 1.96 *. std_error t

let ci95 t =
  let h = ci95_halfwidth t in
  (mean t -. h, mean t +. h)

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let fa = float_of_int a.n and fb = float_of_int b.n and fn = float_of_int (a.n + b.n) in
    let delta = b.mean -. a.mean in
    {
      n;
      mean = a.mean +. (delta *. fb /. fn);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. fn);
      lo = min a.lo b.lo;
      hi = max a.hi b.hi;
      sum = a.sum +. b.sum;
    }
  end

let of_array xs =
  let t = create () in
  Array.iter (add t) xs;
  t

let of_int_array xs =
  let t = create () in
  Array.iter (add_int t) xs;
  t
