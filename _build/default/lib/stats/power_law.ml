type fit = { alpha : float; x_min : int; n_tail : int; ks : float }

let hurwitz_zeta ~alpha ~q =
  if alpha <= 1. then invalid_arg "Power_law.hurwitz_zeta: need alpha > 1";
  if q <= 0. then invalid_arg "Power_law.hurwitz_zeta: need q > 0";
  (* Direct sum to N, then Euler–Maclaurin:
     tail ≈ N^(1-a)/(a-1) + N^-a/2 + a·N^(-a-1)/12. *)
  let n_direct = 64. in
  let sum = ref 0. in
  let k = ref 0. in
  while !k < n_direct do
    sum := !sum +. ((q +. !k) ** -.alpha);
    k := !k +. 1.
  done;
  (* Tail from big_n (not yet summed): Euler–Maclaurin
     Σ_{k>=N} f(k) = ∫_N^∞ f + f(N)/2 - f'(N)/12 + ... *)
  let big_n = q +. n_direct in
  !sum
  +. (big_n ** (1. -. alpha)) /. (alpha -. 1.)
  +. ((big_n ** -.alpha) /. 2.)
  +. (alpha *. (big_n ** (-.alpha -. 1.)) /. 12.)

let tail_sample xs ~x_min =
  let tail = Array.of_seq (Seq.filter (fun x -> x >= x_min) (Array.to_seq xs)) in
  if Array.length tail = 0 then invalid_arg "Power_law: empty tail sample";
  tail

let mle_alpha_approx xs ~x_min =
  if x_min < 1 then invalid_arg "Power_law.mle_alpha_approx: need x_min >= 1";
  let tail = tail_sample xs ~x_min in
  let n = float_of_int (Array.length tail) in
  let shift = float_of_int x_min -. 0.5 in
  let log_sum =
    Array.fold_left (fun acc x -> acc +. log (float_of_int x /. shift)) 0. tail
  in
  1. +. (n /. log_sum)

(* Exact discrete MLE: maximise
   L(α) = -α Σ log x_i - n log ζ(α, x_min)
   by golden-section search; L is concave in α on (1, ∞). *)
let mle_alpha xs ~x_min =
  if x_min < 1 then invalid_arg "Power_law.mle_alpha: need x_min >= 1";
  let tail = tail_sample xs ~x_min in
  let n = float_of_int (Array.length tail) in
  let log_sum = Array.fold_left (fun acc x -> acc +. log (float_of_int x)) 0. tail in
  let q = float_of_int x_min in
  let log_lik alpha = (-.alpha *. log_sum) -. (n *. log (hurwitz_zeta ~alpha ~q)) in
  let phi = (sqrt 5. -. 1.) /. 2. in
  let lo = ref 1.000001 and hi = ref 20. in
  let x1 = ref (!hi -. (phi *. (!hi -. !lo))) and x2 = ref (!lo +. (phi *. (!hi -. !lo))) in
  let f1 = ref (log_lik !x1) and f2 = ref (log_lik !x2) in
  while !hi -. !lo > 1e-7 do
    if !f1 > !f2 then begin
      hi := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !hi -. (phi *. (!hi -. !lo));
      f1 := log_lik !x1
    end
    else begin
      lo := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !lo +. (phi *. (!hi -. !lo));
      f2 := log_lik !x2
    end
  done;
  (!lo +. !hi) /. 2.

let ks_distance tail ~alpha ~x_min =
  let n = Array.length tail in
  let sorted = Array.copy tail in
  Array.sort compare sorted;
  let z = hurwitz_zeta ~alpha ~q:(float_of_int x_min) in
  (* Model CDF at integer x: 1 - ζ(α, x+1)/ζ(α, x_min). *)
  let model_cdf x = 1. -. (hurwitz_zeta ~alpha ~q:(float_of_int (x + 1)) /. z) in
  let worst = ref 0. in
  let i = ref 0 in
  while !i < n do
    (* Advance over ties so the empirical CDF is evaluated once per
       distinct value; for a discrete model the comparison is CDF vs
       CDF at each atom (both right-continuous). *)
    let x = sorted.(!i) in
    let j = ref !i in
    while !j < n && sorted.(!j) = x do
      incr j
    done;
    let emp = float_of_int !j /. float_of_int n in
    worst := max !worst (Float.abs (emp -. model_cdf x));
    i := !j
  done;
  !worst

let fit xs ~x_min =
  let alpha = mle_alpha xs ~x_min in
  let tail = tail_sample xs ~x_min in
  { alpha; x_min; n_tail = Array.length tail; ks = ks_distance tail ~alpha ~x_min }

let default_candidates xs =
  let positive = Array.of_seq (Seq.filter (fun x -> x > 0) (Array.to_seq xs)) in
  if Array.length positive = 0 then []
  else begin
    let sorted = Array.copy positive in
    Array.sort compare sorted;
    let p90 = sorted.(min (Array.length sorted - 1) (Array.length sorted * 9 / 10)) in
    let tbl = Hashtbl.create 64 in
    Array.iter (fun x -> if x <= p90 then Hashtbl.replace tbl x ()) sorted;
    Hashtbl.fold (fun x () acc -> x :: acc) tbl [] |> List.sort compare
  end

let fit_scan xs ?x_min_candidates () =
  let candidates =
    match x_min_candidates with Some c -> c | None -> default_candidates xs
  in
  let fits =
    List.filter_map
      (fun x_min ->
        (* Skip cutoffs leaving too little tail or degenerate sums. *)
        try
          let f = fit xs ~x_min in
          if f.n_tail >= 10 && Float.is_finite f.alpha && f.alpha > 1. then Some f
          else None
        with Invalid_argument _ -> None)
      candidates
  in
  match fits with
  | [] -> invalid_arg "Power_law.fit_scan: no admissible x_min candidate"
  | first :: rest ->
    List.fold_left (fun best f -> if f.ks < best.ks then f else best) first rest
