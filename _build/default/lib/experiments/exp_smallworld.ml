module Rng = Sf_prng.Rng
module Ugraph = Sf_graph.Ugraph
module Traversal = Sf_graph.Traversal
module Kleinberg = Sf_gen.Kleinberg
module Geo_routing = Sf_search.Geo_routing
module Table = Sf_stats.Table

let t10_diameter ~quick ~seed =
  let sizes = Exp.scales ~quick:[ 500; 2_000 ] ~full:[ 1_000; 4_000; 16_000; 64_000 ] quick in
  let master = Rng.of_seed seed in
  let buf = Buffer.create 2048 in
  let checks = ref [] in
  Buffer.add_string buf
    (Exp.section "T10: log diameter vs sqrt(n) search cost - small world, not searchable");
  let models =
    [
      ("Mori p=0.5", fun rng n -> Sf_gen.Mori.tree rng ~p:0.5 ~t:n);
      ( "Cooper-Frieze",
        fun rng n -> Sf_gen.Cooper_frieze.generate_n_vertices rng Sf_gen.Cooper_frieze.default ~n );
    ]
  in
  let rows = ref [] in
  List.iteri
    (fun mi (name, make) ->
      let diams = ref [] in
      List.iteri
        (fun si n ->
          let rng = Rng.split_at master ((mi * 100) + si) in
          let g = Ugraph.of_digraph (make rng n) in
          let diam = Traversal.diameter_double_sweep g rng in
          let mean_dist = Traversal.mean_distance_sampled g rng ~samples:3 in
          diams := (n, diam) :: !diams;
          let bound =
            (Sf_core.Lower_bound.theorem1 ~p:0.5 ~m:1 ~n).Sf_core.Lower_bound.requests
          in
          rows :=
            [
              name;
              Sf_stats.Table.fmt_int_grouped n;
              string_of_int diam;
              Exp.fmt ~digits:1 mean_dist;
              Exp.fmt ~digits:1 (log (float_of_int n));
              Exp.fmt ~digits:1 bound;
            ]
            :: !rows;
          checks :=
            ( Printf.sprintf "%s n=%d: diameter %d <= 12 ln n" name n diam,
              float_of_int diam <= 12. *. log (float_of_int n) )
            :: !checks)
        sizes;
      (* growth check: diameter grows far slower than sqrt(n) *)
      match (List.assoc_opt (List.hd sizes) (List.rev !diams), !diams) with
      | Some d_small, (n_large, d_large) :: _ when n_large > List.hd sizes ->
        let size_ratio = float_of_int n_large /. float_of_int (List.hd sizes) in
        let diam_ratio = float_of_int d_large /. float_of_int (max 1 d_small) in
        checks :=
          ( Printf.sprintf "%s: diameter ratio %.1f well below sqrt(size ratio) %.1f" name
              diam_ratio (sqrt size_ratio),
            diam_ratio < sqrt size_ratio )
          :: !checks
      | _ -> ())
    models;
  Buffer.add_string buf
    (Table.render
       ~headers:[ "model"; "n"; "diameter (2-sweep)"; "mean distance"; "ln n"; "search bound" ]
       ~rows:(List.rev !rows) ());
  {
    Exp.id = "T10";
    title = "Scale-free graphs are small worlds yet not searchable";
    output = Buffer.contents buf;
    checks = List.rev !checks;
  }

let t12_kleinberg ~quick ~seed =
  let sides = Exp.scales ~quick:[ 10; 20 ] ~full:[ 16; 32; 64; 128; 256 ] quick in
  let rs = Exp.pick ~quick:[ 0.; 2. ] ~full:[ 0.; 1.; 2.; 3.; 4. ] quick in
  let trials = Exp.pick ~quick:10 ~full:40 quick in
  let master = Rng.of_seed seed in
  let buf = Buffer.create 2048 in
  let checks = ref [] in
  Buffer.add_string buf
    (Exp.section "T12: Kleinberg greedy routing - navigability needs the right metric (r = 2)");
  let mean_steps = Hashtbl.create 32 in
  let total_failures = ref 0 and total_routes = ref 0 in
  let rows = ref [] in
  List.iteri
    (fun ri r ->
      List.iteri
        (fun si side ->
          let rng = Rng.split_at master ((ri * 100) + si) in
          let t = Kleinberg.generate rng ~side ~r ~q:1 () in
          let g = Ugraph.of_digraph t.Kleinberg.graph in
          let dist = Kleinberg.lattice_distance ~side in
          let n = side * side in
          let summary = Sf_stats.Summary.create () in
          let failures = ref 0 in
          for _ = 1 to trials do
            let source = 1 + Rng.int rng n in
            let target = 1 + Rng.int rng n in
            if source <> target then begin
              let res = Geo_routing.greedy g ~dist ~source ~target ~max_steps:(8 * side * side) in
              incr total_routes;
              if res.Geo_routing.reached then
                Sf_stats.Summary.add summary (float_of_int res.Geo_routing.steps)
              else begin
                incr failures;
                incr total_failures
              end
            end
          done;
          Hashtbl.replace mean_steps (r, side) (Sf_stats.Summary.mean summary);
          rows :=
            [
              Exp.fmt ~digits:1 r;
              string_of_int side;
              Sf_stats.Table.fmt_int_grouped n;
              Exp.fmt ~digits:1 (Sf_stats.Summary.mean summary);
              Exp.fmt ~digits:1 (Sf_stats.Summary.ci95_halfwidth summary);
              string_of_int !failures;
            ]
            :: !rows)
        sides)
    rs;
  Buffer.add_string buf
    (Table.render
       ~headers:[ "r"; "side"; "n"; "mean greedy steps"; "±95%"; "failures" ]
       ~rows:(List.rev !rows) ());
  checks :=
    ( Printf.sprintf "greedy routing always terminates (%d/%d failures)" !total_failures
        !total_routes,
      !total_failures = 0 )
    :: !checks;
  (* the navigability separation only shows at full scale; tiny quick
     grids cannot distinguish log^2 n from polynomial growth *)
  if not quick then begin
    let small = List.hd sides and large = List.nth sides (List.length sides - 1) in
    let steps r side = try Hashtbl.find mean_steps (r, side) with Not_found -> nan in
    let growth_2 = steps 2. large /. Float.max 1. (steps 2. small) in
    let size_growth = float_of_int (large * large) /. float_of_int (small * small) in
    checks :=
      ( Printf.sprintf "r=2 routing grows slowly (factor %.2f for %.0fx nodes)" growth_2
          size_growth,
        growth_2 < sqrt size_growth /. 1.5 )
      :: !checks;
    let growth_0 = steps 0. large /. Float.max 1. (steps 0. small) in
    (* Kleinberg's separation is asymptotic: at these sizes r = 0 still
       rivals r = 2 in absolute hops (its polynomial constant is tiny),
       but its growth rate is already visibly faster — that is the
       testable shape. *)
    checks :=
      ( Printf.sprintf "r=0 grows faster than r=2 (%.2f > %.2f)" growth_0 growth_2,
        growth_0 > growth_2 )
      :: !checks;
    let growth_4 = steps 4. large /. Float.max 1. (steps 4. small) in
    checks :=
      ( Printf.sprintf "r=4 grows faster than r=2 (%.2f > %.2f)" growth_4 growth_2,
        growth_4 > growth_2 )
      :: !checks;
    checks :=
      ("r=2 beats r=4 at the largest size", steps 2. large < steps 4. large) :: !checks
  end;
  {
    Exp.id = "T12";
    title = "Kleinberg's navigable small world: the contrast class";
    output = Buffer.contents buf;
    checks = List.rev !checks;
  }
