module Rng = Sf_prng.Rng
module Searchability = Sf_core.Searchability
module Lower_bound = Sf_core.Lower_bound
module Strategies = Sf_search.Strategies
module Table = Sf_stats.Table

let bound_line ~p ~m sizes =
  let rows =
    List.map
      (fun n ->
        let b = Lower_bound.theorem1 ~p ~m ~n in
        [
          string_of_int n;
          string_of_int b.Lower_bound.set_size;
          Exp.fmt ~digits:4 b.Lower_bound.event_prob;
          Exp.fmt ~digits:2 b.Lower_bound.requests;
          Exp.fmt ~digits:2 (Lower_bound.asymptotic_theorem1 ~p ~n);
        ])
      sizes
  in
  Table.render
    ~headers:[ "n"; "|V|"; "P(E) exact"; "bound |V|P(E)/2"; "sqrt(n)e^{-(1-p)}/2" ]
    ~rows ()

(* Check that every measured point stays above the explicit bound, and
   collect per-strategy scaling exponents. *)
let confront ~p ~m points =
  let bound_ok =
    List.for_all
      (fun (pt : Searchability.point) ->
        pt.Searchability.mean
        >= (Lower_bound.theorem1 ~p ~m ~n:pt.Searchability.n).Lower_bound.requests)
      points
  in
  let strategies =
    List.sort_uniq compare (List.map (fun (pt : Searchability.point) -> pt.Searchability.strategy) points)
  in
  let fits =
    List.map (fun s -> (s, Searchability.exponent_fit points ~strategy:s)) strategies
  in
  (bound_ok, fits)

let render_fits fits =
  Table.render ~headers:[ "strategy"; "fitted exponent of mean requests" ]
    ~rows:(List.map (fun (s, fit) -> [ s; Exp.fmt_opt_exponent fit ]) fits)
    ()

let t1_weak_mori ~quick ~seed =
  let ps = Exp.pick ~quick:[ 0.5 ] ~full:[ 0.1; 0.5; 0.9 ] quick in
  let sizes =
    Exp.scales ~quick:[ 200; 400 ] ~full:[ 1_000; 2_000; 4_000; 8_000; 16_000 ] quick
  in
  let trials = Exp.pick ~quick:4 ~full:25 quick in
  let strategies =
    Exp.pick
      ~quick:[ Strategies.bfs; Strategies.high_degree; Strategies.random_edge ~skip_known:true ]
      ~full:(Strategies.weak_portfolio ())
      quick
  in
  let buf = Buffer.create 4096 in
  let checks = ref [] in
  List.iter
    (fun p ->
      let rng = Rng.split_at (Rng.of_seed seed) (int_of_float (p *. 1000.)) in
      let spec = { Searchability.default_spec with Searchability.trials } in
      let points =
        Searchability.measure rng
          ~make:(Searchability.mori_instance ~p ~m:1)
          ~strategies ~sizes ~spec
      in
      let bound_ok, fits = confront ~p ~m:1 points in
      Buffer.add_string buf (Exp.section (Printf.sprintf "T1: weak model, Mori tree, p = %.2f" p));
      Buffer.add_string buf (bound_line ~p ~m:1 sizes);
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Exp.render_points points);
      Buffer.add_char buf '\n';
      Buffer.add_string buf (render_fits fits);
      Buffer.add_char buf '\n';
      let bound_series =
        {
          Sf_stats.Plot.label = "Lemma-1 bound";
          glyph = 'B';
          points =
            List.map
              (fun n ->
                (float_of_int n, (Lower_bound.theorem1 ~p ~m:1 ~n).Lower_bound.requests))
              sizes;
        }
      in
      Buffer.add_string buf (Exp.scaling_figure ~extra:[ bound_series ] points);
      Buffer.add_char buf '\n';
      checks :=
        (Printf.sprintf "p=%.2f: every strategy respects the explicit bound" p, bound_ok)
        :: !checks;
      if not quick then begin
        let best = Exp.best_strategy points in
        let fit = List.assoc best fits in
        checks :=
          ( Printf.sprintf "p=%.2f: best strategy (%s) scales with exponent >= 0.4" p best,
            fit.Sf_stats.Regression.slope >= 0.4 )
          :: !checks
      end)
    ps;
  {
    Exp.id = "T1";
    title = "Theorem 1 (weak model, m = 1): Omega(sqrt n) on the Mori tree";
    output = Buffer.contents buf;
    checks = List.rev !checks;
  }

let t2_merged_mori ~quick ~seed =
  let p = 0.5 in
  let ms = Exp.pick ~quick:[ 2 ] ~full:[ 2; 4 ] quick in
  let sizes = Exp.scales ~quick:[ 150; 300 ] ~full:[ 1_000; 4_000; 16_000 ] quick in
  let trials = Exp.pick ~quick:4 ~full:20 quick in
  let strategies =
    Exp.pick
      ~quick:[ Strategies.bfs; Strategies.high_degree ]
      ~full:(Strategies.weak_portfolio ())
      quick
  in
  let buf = Buffer.create 4096 in
  let checks = ref [] in
  List.iter
    (fun m ->
      let rng = Rng.split_at (Rng.of_seed seed) (1000 + m) in
      let spec = { Searchability.default_spec with Searchability.trials } in
      let points =
        Searchability.measure rng
          ~make:(Searchability.mori_instance ~p ~m)
          ~strategies ~sizes ~spec
      in
      let bound_ok, fits = confront ~p ~m points in
      Buffer.add_string buf
        (Exp.section (Printf.sprintf "T2: weak model, merged Mori graph, m = %d, p = %.2f" m p));
      Buffer.add_string buf (bound_line ~p ~m sizes);
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Exp.render_points points);
      Buffer.add_char buf '\n';
      Buffer.add_string buf (render_fits fits);
      Buffer.add_char buf '\n';
      checks :=
        (Printf.sprintf "m=%d: every strategy respects the explicit bound" m, bound_ok) :: !checks)
    ms;
  {
    Exp.id = "T2";
    title = "Theorem 1 (weak model, m > 1): merging does not make the graph searchable";
    output = Buffer.contents buf;
    checks = List.rev !checks;
  }

let t3_strong_mori ~quick ~seed =
  let ps = Exp.pick ~quick:[ 0.25 ] ~full:[ 0.2; 0.35 ] quick in
  let sizes = Exp.scales ~quick:[ 200; 800 ] ~full:[ 1_000; 4_000; 16_000; 64_000 ] quick in
  let trials = Exp.pick ~quick:4 ~full:15 quick in
  let strategies =
    Exp.pick ~quick:[ Strategies.strong_seq; Strategies.strong_high_degree ]
      ~full:(Strategies.strong_portfolio ()) quick
  in
  let buf = Buffer.create 4096 in
  let checks = ref [] in
  List.iter
    (fun p ->
      let rng = Rng.split_at (Rng.of_seed seed) (2000 + int_of_float (p *. 100.)) in
      let spec = { Searchability.default_spec with Searchability.trials } in
      let points =
        Searchability.measure rng
          ~make:(Searchability.mori_instance ~p ~m:1)
          ~strategies ~sizes ~spec
      in
      let strategies_names =
        List.sort_uniq compare
          (List.map (fun (pt : Searchability.point) -> pt.Searchability.strategy) points)
      in
      let fits =
        List.map (fun s -> (s, Searchability.exponent_fit points ~strategy:s)) strategies_names
      in
      let predicted = Lower_bound.strong_model_exponent ~p in
      Buffer.add_string buf
        (Exp.section
           (Printf.sprintf "T3: strong model, Mori tree, p = %.2f (predicted exponent >= %.2f)" p
              predicted));
      Buffer.add_string buf (Exp.render_points points);
      Buffer.add_char buf '\n';
      Buffer.add_string buf (render_fits fits);
      Buffer.add_char buf '\n';
      if not quick then
        List.iter
          (fun (s, fit) ->
            checks :=
              ( Printf.sprintf "p=%.2f: %s exponent %.2f >= %.2f - slack" p s
                  fit.Sf_stats.Regression.slope predicted,
                fit.Sf_stats.Regression.slope >= predicted -. 0.15 )
              :: !checks)
          fits
      else
        checks :=
          ( Printf.sprintf "p=%.2f: strong searches cost requests" p,
            List.for_all (fun (pt : Searchability.point) -> pt.Searchability.mean >= 1.) points )
          :: !checks)
    ps;
  {
    Exp.id = "T3";
    title = "Theorem 1 (strong model): Omega(n^{1/2 - p}) for p < 1/2";
    output = Buffer.contents buf;
    checks = List.rev !checks;
  }

let t7_bound_vs_measured ~quick ~seed =
  let p = 0.5 in
  let sizes = Exp.scales ~quick:[ 200; 400 ] ~full:[ 1_000; 4_000; 16_000 ] quick in
  let trials = Exp.pick ~quick:4 ~full:20 quick in
  let rng = Rng.split_at (Rng.of_seed seed) 7 in
  let spec = { Searchability.default_spec with Searchability.trials } in
  let strategies =
    Exp.pick
      ~quick:[ Strategies.bfs; Strategies.high_degree ]
      ~full:(Strategies.weak_portfolio ())
      quick
  in
  let points =
    Searchability.measure rng
      ~make:(Searchability.mori_instance ~p ~m:1)
      ~strategies ~sizes ~spec
  in
  let rows, ok =
    List.fold_left
      (fun (rows, ok) (n, best_mean) ->
        let bound = (Lower_bound.theorem1 ~p ~m:1 ~n).Lower_bound.requests in
        let ratio = best_mean /. bound in
        ( [
            string_of_int n;
            Exp.fmt ~digits:2 bound;
            Exp.fmt ~digits:1 best_mean;
            Exp.fmt ~digits:2 ratio;
          ]
          :: rows,
          ok && ratio >= 1. ))
      ([], true) (Exp.min_mean_by_size points)
  in
  let table =
    Table.render
      ~headers:[ "n"; "Lemma-1 bound"; "cheapest measured mean"; "ratio" ]
      ~rows:(List.rev rows) ()
  in
  {
    Exp.id = "T7";
    title = "Lemma 1 in numbers: explicit bound vs the cheapest strategy";
    output = Exp.section "T7: explicit lower bound vs measured adversary (p = 0.5)" ^ table;
    checks = [ ("bound below every measured mean", ok) ];
  }

(* Replay a strong run as weak requests: each strong request on u
   becomes degree(u) weak requests (one per incident edge), exactly the
   reduction in the paper's proof sketch. *)
let t14_simulation_factor ~quick ~seed =
  let p = 0.3 in
  let sizes = Exp.scales ~quick:[ 500 ] ~full:[ 4_000; 16_000 ] quick in
  let trials = Exp.pick ~quick:3 ~full:10 quick in
  let master = Rng.of_seed seed in
  let buf = Buffer.create 1024 in
  let checks = ref [] in
  Buffer.add_string buf (Exp.section "T14: strong-to-weak simulation factor (p = 0.3)");
  let rows = ref [] in
  List.iteri
    (fun i n ->
      let ratios = Sf_stats.Summary.create () in
      let within = ref true in
      for trial = 0 to trials - 1 do
        let rng = Rng.split_at master ((i * 1000) + trial) in
        let g, target = Searchability.mori_instance ~p ~m:1 rng n in
        let oracle =
          Sf_search.Oracle.start ~rng Sf_search.Oracle.Strong g ~source:1 ~target
        in
        let outcome = Sf_search.Runner.run ~rng Strategies.strong_high_degree oracle in
        let strong_cost = outcome.Sf_search.Runner.total_requests in
        (* weak-simulation cost: sum of degrees over explored vertices *)
        let sim_cost = ref 0 in
        for j = 0 to Sf_search.Oracle.discovered_count oracle - 1 do
          let v = Sf_search.Oracle.discovered_nth oracle j in
          if Sf_search.Oracle.is_explored oracle v then
            sim_cost := !sim_cost + Sf_search.Oracle.degree oracle v
        done;
        let max_deg = Sf_graph.Ugraph.max_degree g in
        if !sim_cost > (max_deg + 1) * max 1 strong_cost then within := false;
        if strong_cost > 0 then
          Sf_stats.Summary.add ratios (float_of_int !sim_cost /. float_of_int strong_cost)
      done;
      rows :=
        [
          string_of_int n;
          Exp.fmt ~digits:1 (Sf_stats.Summary.mean ratios);
          Exp.fmt ~digits:1 (float_of_int n ** p);
        ]
        :: !rows;
      checks :=
        ( Printf.sprintf "n=%d: simulation cost <= (max degree + 1) x strong cost" n,
          !within )
        :: !checks)
    sizes;
  Buffer.add_string buf
    (Table.render
       ~headers:[ "n"; "mean sim/strong ratio"; "n^p (max-degree scale)" ]
       ~rows:(List.rev !rows) ());
  {
    Exp.id = "T14";
    title = "The strong-to-weak reduction loses at most a max-degree factor";
    output = Buffer.contents buf;
    checks = List.rev !checks;
  }
