lib/experiments/exp_lemmas.mli: Exp
