lib/experiments/exp_extensions.ml: Array Buffer Exp Float Hashtbl List Option Printf Sf_core Sf_gen Sf_graph Sf_prng Sf_search Sf_stats
