lib/experiments/exp_baselines.ml: Buffer Exp Hashtbl List Printf Sf_core Sf_gen Sf_graph Sf_prng Sf_search Sf_stats
