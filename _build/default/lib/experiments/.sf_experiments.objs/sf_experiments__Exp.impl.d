lib/experiments/exp.ml: Array Float List Printf Sf_core Sf_stats String
