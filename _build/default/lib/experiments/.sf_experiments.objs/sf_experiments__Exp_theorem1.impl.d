lib/experiments/exp_theorem1.ml: Buffer Exp List Printf Sf_core Sf_graph Sf_prng Sf_search Sf_stats
