lib/experiments/exp_smallworld.mli: Exp
