lib/experiments/exp_theorem2.ml: Buffer Exp List Printf Sf_core Sf_gen Sf_prng Sf_search Sf_stats
