lib/experiments/exp_degree.ml: Array Buffer Exp Float List Printf Sf_core Sf_gen Sf_graph Sf_prng Sf_stats
