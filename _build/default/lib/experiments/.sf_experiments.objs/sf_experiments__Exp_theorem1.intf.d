lib/experiments/exp_theorem1.mli: Exp
