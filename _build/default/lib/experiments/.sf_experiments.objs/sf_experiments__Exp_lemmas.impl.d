lib/experiments/exp_lemmas.ml: Buffer Exp Float List Printf Sf_core Sf_graph Sf_prng Sf_stats
