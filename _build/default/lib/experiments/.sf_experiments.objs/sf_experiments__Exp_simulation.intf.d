lib/experiments/exp_simulation.mli: Exp
