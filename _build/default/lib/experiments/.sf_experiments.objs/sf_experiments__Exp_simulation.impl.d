lib/experiments/exp_simulation.ml: Array Buffer Exp Float Fun Hashtbl List Printf Sf_gen Sf_graph Sf_prng Sf_sim Sf_stats String
