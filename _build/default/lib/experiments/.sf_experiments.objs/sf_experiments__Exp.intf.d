lib/experiments/exp.mli: Sf_core Sf_stats
