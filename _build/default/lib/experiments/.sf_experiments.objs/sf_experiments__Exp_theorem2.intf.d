lib/experiments/exp_theorem2.mli: Exp
