lib/experiments/registry.ml: Exp Exp_baselines Exp_degree Exp_extensions Exp_lemmas Exp_simulation Exp_smallworld Exp_theorem1 Exp_theorem2 List String
