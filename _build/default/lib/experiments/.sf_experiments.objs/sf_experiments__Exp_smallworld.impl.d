lib/experiments/exp_smallworld.ml: Buffer Exp Float Hashtbl List Printf Sf_core Sf_gen Sf_graph Sf_prng Sf_search Sf_stats
