lib/experiments/exp_degree.mli: Exp
