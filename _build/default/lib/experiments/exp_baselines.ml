module Rng = Sf_prng.Rng
module Searchability = Sf_core.Searchability
module Strategies = Sf_search.Strategies
module Percolation = Sf_search.Percolation
module Ugraph = Sf_graph.Ugraph
module Table = Sf_stats.Table

let t11_adamic ~quick ~seed =
  let ks = Exp.pick ~quick:[ 2.3 ] ~full:[ 2.1; 2.3; 2.5; 2.9 ] quick in
  let sizes = Exp.scales ~quick:[ 500; 1_500 ] ~full:[ 2_000; 8_000; 32_000 ] quick in
  let trials = Exp.pick ~quick:5 ~full:20 quick in
  let master = Rng.of_seed seed in
  let buf = Buffer.create 4096 in
  let checks = ref [] in
  (* Adamic et al.'s searchers see the identities of the current
     vertex's neighbours — our strong model; cost = vertices visited. *)
  let strategies =
    [ Strategies.strong_high_degree; Strategies.strong_random_walk; Strategies.strong_seq ]
  in
  List.iteri
    (fun ki k ->
      let rng = Rng.split_at master (1100 + ki) in
      let spec =
        {
          Searchability.trials;
          metric = Searchability.To_target;
          source = `Random;
          budget = (fun n -> (8 * n) + 64);
        }
      in
      let points =
        Searchability.measure rng
          ~make:(Searchability.config_model_instance ~exponent:k)
          ~strategies ~sizes ~spec
      in
      Buffer.add_string buf
        (Exp.section
           (Printf.sprintf
              "T11: Adamic et al. search on power-law configuration graphs, k = %.1f" k));
      Buffer.add_string buf
        (Printf.sprintf
           "mean-field prediction: greedy ~ n^%.2f, random walk ~ n^%.2f\n\n"
           (2. *. (1. -. (2. /. k)))
           (3. *. (1. -. (2. /. k))));
      Buffer.add_string buf (Exp.render_points points);
      Buffer.add_char buf '\n';
      let fits =
        List.map
          (fun s ->
            (s.Sf_search.Strategy.name,
             Searchability.exponent_fit points ~strategy:s.Sf_search.Strategy.name))
          strategies
      in
      Buffer.add_string buf
        (Table.render ~headers:[ "strategy"; "fitted exponent" ]
           ~rows:(List.map (fun (s, f) -> [ s; Exp.fmt_opt_exponent f ]) fits)
           ());
      Buffer.add_char buf '\n';
      let largest = List.nth sizes (List.length sizes - 1) in
      let mean_of name =
        (List.find
           (fun (pt : Searchability.point) ->
             pt.Searchability.n = largest && pt.Searchability.strategy = name)
           points)
          .Searchability.mean
      in
      let greedy = mean_of "s-high-degree" and walk = mean_of "s-rand-walk" in
      (* the crossover where degree-seeking overtakes the walk sits in
         the low thousands; only assert the ordering at full scale *)
      if not quick then
        checks :=
          ( Printf.sprintf "k=%.1f: high-degree greedy (%.0f) beats random walk (%.0f)" k
              greedy walk,
            greedy < walk )
          :: !checks;
      checks :=
        ( Printf.sprintf "k=%.1f: greedy sublinear (%.0f << n=%d)" k greedy largest,
          greedy < float_of_int largest /. 2. )
        :: !checks;
      if (not quick) && k >= 2.4 then begin
        let fit_of name = (List.assoc name fits).Sf_stats.Regression.slope in
        checks :=
          ( Printf.sprintf "k=%.1f: exponent ordering greedy < walk" k,
            fit_of "s-high-degree" < fit_of "s-rand-walk" )
          :: !checks
      end)
    ks;
  {
    Exp.id = "T11";
    title = "Adamic et al.: degree-driven search works on pure power-law graphs";
    output = Buffer.contents buf;
    checks = List.rev !checks;
  }

let t13_percolation ~quick ~seed =
  let sizes = Exp.scales ~quick:[ 500; 1_500 ] ~full:[ 2_000; 8_000; 32_000 ] quick in
  let probs = Exp.pick ~quick:[ 0.1; 0.8 ] ~full:[ 0.1; 0.3; 0.5; 1.0 ] quick in
  let trials = Exp.pick ~quick:10 ~full:30 quick in
  let master = Rng.of_seed seed in
  let buf = Buffer.create 4096 in
  let checks = ref [] in
  Buffer.add_string buf
    (Exp.section "T13: Sarshar et al. percolation search on power-law graphs (k = 2.3)");
  let hit_rate = Hashtbl.create 16 in
  let rows = ref [] in
  List.iteri
    (fun si n ->
      let rng = Rng.split_at master (1300 + si) in
      let g = Sf_gen.Config_model.searchable_power_law rng ~n ~exponent:2.3 () in
      let u = Ugraph.of_digraph g in
      let n' = Ugraph.n_vertices u in
      List.iter
        (fun q ->
          let base = Percolation.default_params ~n:n' in
          let params = { base with Percolation.broadcast_prob = q } in
          let hits = ref 0 in
          let messages = Sf_stats.Summary.create () in
          let contacted = Sf_stats.Summary.create () in
          for _ = 1 to trials do
            let source = 1 + Rng.int rng n' in
            let target = 1 + Rng.int rng n' in
            if source <> target then begin
              let r = Percolation.run rng u params ~source ~target in
              if r.Percolation.hit then incr hits;
              Sf_stats.Summary.add_int messages r.Percolation.messages;
              Sf_stats.Summary.add_int contacted r.Percolation.contacted
            end
          done;
          let rate = float_of_int !hits /. float_of_int trials in
          Hashtbl.replace hit_rate (n, q) rate;
          rows :=
            [
              Sf_stats.Table.fmt_int_grouped n';
              Exp.fmt ~digits:1 q;
              Exp.fmt ~digits:2 rate;
              Exp.fmt ~digits:0 (Sf_stats.Summary.mean messages);
              Exp.fmt ~digits:0 (Sf_stats.Summary.mean contacted);
              Exp.fmt ~digits:2
                (Sf_stats.Summary.mean contacted /. float_of_int n');
            ]
            :: !rows)
        probs)
    sizes;
  Buffer.add_string buf
    (Table.render
       ~headers:[ "n"; "q"; "hit rate"; "mean messages"; "mean contacted"; "contacted/n" ]
       ~rows:(List.rev !rows) ());
  let largest = List.nth sizes (List.length sizes - 1) in
  let high_q = List.nth probs (List.length probs - 1) in
  let low_q = List.hd probs in
  let rate nq = try Hashtbl.find hit_rate nq with Not_found -> 0. in
  checks :=
    [
      ( Printf.sprintf "high broadcast probability finds content (rate %.2f >= 0.7)"
          (rate (largest, high_q)),
        rate (largest, high_q) >= 0.7 );
      ( "higher broadcast probability never hurts",
        rate (largest, high_q) >= rate (largest, low_q) -. 0.15 );
    ];
  {
    Exp.id = "T13";
    title = "Percolation search: replication buys sublinear lookup";
    output = Buffer.contents buf;
    checks = !checks;
  }
