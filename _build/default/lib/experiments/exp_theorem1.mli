(** Experiments T1, T2, T3, T7 and T14: Theorem 1 on the (merged) Móri
    graph — weak-model Ω(√n), the merged variant, the strong model,
    the explicit Lemma 1 bound versus the measured adversary, and the
    strong→weak simulation factor. *)

val t1_weak_mori : quick:bool -> seed:int -> Exp.result
(** Weak model, m = 1: measured request complexity of the whole
    strategy portfolio across p and n, with scaling exponents; every
    point must respect the explicit Theorem 1 bound. *)

val t2_merged_mori : quick:bool -> seed:int -> Exp.result
(** Same for the merged graph, m ∈ {2, 4}: merging does not help. *)

val t3_strong_mori : quick:bool -> seed:int -> Exp.result
(** Strong model, p < 1/2: fitted exponents at least ~(1/2 − p). *)

val t7_bound_vs_measured : quick:bool -> seed:int -> Exp.result
(** The explicit bound |V|·P(E)/2 against the cheapest measured
    strategy, size by size: ratio ≥ 1 everywhere. *)

val t14_simulation_factor : quick:bool -> seed:int -> Exp.result
(** The proof's strong→weak reduction, measured: replaying a strong
    run as weak requests costs at most (max degree + 1) × strong
    requests. *)
