(** Experiment T19: the deployment view.

    The oracle experiments count requests; deployed P2P systems care
    about wall-clock latency and total traffic of {e concurrent}
    query propagation. T19 runs Gnutella-style flooding, Lv et al.'s
    k-walkers and Sarshar-style percolation spread as discrete-event
    simulations over a power-law overlay and reproduces the classic
    traffic/latency tradeoff: flooding is fast but broadcast-priced,
    walkers are cheap but slow, percolation sits between. *)

val t19_protocol_tradeoff : quick:bool -> seed:int -> Exp.result

(** Experiment T20: Cohen–Shenker replication. With random-walk
    search, allocating replicas proportionally to the {e square root}
    of item popularity minimises expected search size; uniform and
    popularity-proportional allocation tie with each other and lose.
    The other classic of the unstructured-P2P literature the paper's
    motivation leans on, reproduced in the simulator. *)

val t20_sqrt_replication : quick:bool -> seed:int -> Exp.result

(** Experiment T22: churn. Hit rates of flooding and k-walkers as the
    overlay's stationary uptime drops — redundancy (flood branches,
    many walkers) buys robustness, single walkers die with the nodes
    they stand on. *)

val t22_churn : quick:bool -> seed:int -> Exp.result
