module Rng = Sf_prng.Rng
module Max_degree = Sf_core.Max_degree
module Metrics = Sf_graph.Metrics
module Power_law = Sf_stats.Power_law
module Table = Sf_stats.Table

let t8_max_degree ~quick ~seed =
  let ps = Exp.pick ~quick:[ 0.8 ] ~full:[ 0.3; 0.5; 0.8; 1.0 ] quick in
  let checkpoints =
    Exp.pick ~quick:[ 256; 1_024; 4_096; 8_192 ]
      ~full:[ 1_024; 4_096; 16_384; 65_536; 131_072 ]
      quick
  in
  let trials = Exp.pick ~quick:3 ~full:10 quick in
  let master = Rng.of_seed seed in
  let buf = Buffer.create 2048 in
  let checks = ref [] in
  Buffer.add_string buf (Exp.section "T8: Mori max-degree law - max indegree grows like t^p");
  let figure_series = ref [] in
  let rows =
    List.map
      (fun p ->
        let rng = Rng.split_at master (int_of_float (p *. 100.)) in
        let series = Max_degree.mean_max_indegree rng ~p ~checkpoints ~trials in
        figure_series :=
          {
            Sf_stats.Plot.label = Printf.sprintf "p=%.2f" p;
            glyph =
              Sf_stats.Plot.default_glyphs.(List.length !figure_series
                                            mod Array.length Sf_stats.Plot.default_glyphs);
            points = List.map (fun (t, m) -> (float_of_int t, m)) series;
          }
          :: !figure_series;
        let fit = Max_degree.fit_exponent series in
        let slope = fit.Sf_stats.Regression.slope in
        checks :=
          ( Printf.sprintf "p=%.2f: fitted max-degree exponent %.3f within 0.15 of p" p slope,
            Float.abs (slope -. p) < 0.15 )
          :: !checks;
        let last_t, last_v = List.nth series (List.length series - 1) in
        [
          Exp.fmt ~digits:2 p;
          Exp.fmt_opt_exponent fit;
          Printf.sprintf "%.1f @ t=%s" last_v (Sf_stats.Table.fmt_int_grouped last_t);
        ])
      ps
  in
  Buffer.add_string buf
    (Table.render ~headers:[ "p"; "fitted exponent (predict p)"; "mean max indegree" ] ~rows ());
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Sf_stats.Plot.render ~x_log:true ~y_log:true ~x_label:"t" ~y_label:"max indegree"
       (List.rev !figure_series));
  {
    Exp.id = "T8";
    title = "Mori's max-degree law: the premise of the strong-model corollary";
    output = Buffer.contents buf;
    checks = List.rev !checks;
  }

let fit_tail degrees = Power_law.fit_scan degrees ()

let t9_degree_law ~quick ~seed =
  let n = Exp.pick ~quick:20_000 ~full:200_000 quick in
  let master = Rng.of_seed seed in
  let buf = Buffer.create 4096 in
  let checks = ref [] in
  Buffer.add_string buf (Exp.section "T9: scale-free degree laws of the evolving models");
  let rows = ref [] in
  (* Mori trees: indegree density exponent 1 + 1/p *)
  List.iteri
    (fun i p ->
      let rng = Rng.split_at master (900 + i) in
      let g = Sf_gen.Mori.tree rng ~p ~t:n in
      let fit = fit_tail (Metrics.in_degrees g) in
      let predicted = Sf_gen.Mori.expected_degree_exponent ~p in
      checks :=
        ( Printf.sprintf "Mori p=%.2f: fitted gamma %.2f within 0.4 of %.2f" p
            fit.Power_law.alpha predicted,
          Float.abs (fit.Power_law.alpha -. predicted) < 0.4 )
        :: !checks;
      rows :=
        [
          Printf.sprintf "Mori p=%.2f (indegree)" p;
          Exp.fmt ~digits:2 predicted;
          Exp.fmt ~digits:2 fit.Power_law.alpha;
          string_of_int fit.Power_law.x_min;
          Exp.fmt ~digits:3 fit.Power_law.ks;
        ]
        :: !rows)
    (Exp.pick ~quick:[ 0.75 ] ~full:[ 0.55; 0.75; 0.9 ] quick);
  (* Barabasi-Albert: total-degree exponent 3 *)
  let rng_ba = Rng.split_at master 950 in
  let ba = Sf_gen.Barabasi_albert.generate rng_ba ~n:(Exp.pick ~quick:20_000 ~full:100_000 quick) ~m:2 in
  let ba_fit = fit_tail (Metrics.total_degrees ba) in
  checks :=
    ( Printf.sprintf "BA: fitted gamma %.2f within 0.4 of 3" ba_fit.Power_law.alpha,
      Float.abs (ba_fit.Power_law.alpha -. 3.) < 0.4 )
    :: !checks;
  rows :=
    [
      "Barabasi-Albert m=2 (total degree)";
      "3.00";
      Exp.fmt ~digits:2 ba_fit.Power_law.alpha;
      string_of_int ba_fit.Power_law.x_min;
      Exp.fmt ~digits:3 ba_fit.Power_law.ks;
    ]
    :: !rows;
  (* Cooper-Frieze: report the fitted tail and assert heavy-tailedness *)
  let rng_cf = Rng.split_at master 960 in
  let cf =
    Sf_gen.Cooper_frieze.generate_n_vertices rng_cf Sf_gen.Cooper_frieze.default
      ~n:(Exp.pick ~quick:10_000 ~full:50_000 quick)
  in
  let cf_degrees = Metrics.total_degrees cf in
  let cf_fit = fit_tail cf_degrees in
  let cf_max = Array.fold_left max 0 cf_degrees in
  let cf_mean = Metrics.mean_degree cf in
  checks :=
    ( Printf.sprintf "Cooper-Frieze: heavy tail (max degree %d >> mean %.1f)" cf_max cf_mean,
      float_of_int cf_max > 20. *. cf_mean )
    :: !checks;
  rows :=
    [
      "Cooper-Frieze default (total degree)";
      "-";
      Exp.fmt ~digits:2 cf_fit.Power_law.alpha;
      string_of_int cf_fit.Power_law.x_min;
      Exp.fmt ~digits:3 cf_fit.Power_law.ks;
    ]
    :: !rows;
  (* negative control: uniform attachment is NOT scale-free *)
  let rng_u = Rng.split_at master 970 in
  let ua = Sf_gen.Uniform_attachment.tree rng_u ~t:(Exp.pick ~quick:20_000 ~full:100_000 quick) in
  let ua_max = Metrics.max_in_degree ua in
  checks :=
    ( Printf.sprintf "uniform attachment control: max indegree %d stays logarithmic" ua_max,
      float_of_int ua_max < 8. *. log (float_of_int (Sf_graph.Digraph.n_vertices ua)) )
    :: !checks;
  rows :=
    [ "uniform attachment (control)"; "(no power law)"; "-"; "-"; "-" ] :: !rows;
  Buffer.add_string buf
    (Table.render
       ~headers:[ "model"; "predicted gamma"; "fitted gamma (MLE)"; "x_min"; "KS" ]
       ~rows:(List.rev !rows) ());
  {
    Exp.id = "T9";
    title = "Power-law degree distributions (and a non-scale-free control)";
    output = Buffer.contents buf;
    checks = List.rev !checks;
  }
