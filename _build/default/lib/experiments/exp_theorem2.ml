module Rng = Sf_prng.Rng
module Searchability = Sf_core.Searchability
module Lower_bound = Sf_core.Lower_bound
module Strategies = Sf_search.Strategies
module Cooper_frieze = Sf_gen.Cooper_frieze
module Table = Sf_stats.Table

let estimate_bounds rng params sizes ~trials =
  List.map
    (fun n ->
      (n, Lower_bound.theorem2_estimate rng params ~n ~trials ()))
    sizes

let t4_cooper_frieze ~quick ~seed =
  let alphas = Exp.pick ~quick:[ 0.5 ] ~full:[ 0.33; 0.5; 0.9 ] quick in
  let sizes = Exp.scales ~quick:[ 200; 400 ] ~full:[ 500; 1_000; 2_000; 4_000; 8_000 ] quick in
  let bound_sizes = Exp.scales ~quick:[ 200 ] ~full:[ 500; 2_000; 8_000 ] quick in
  let trials = Exp.pick ~quick:4 ~full:15 quick in
  let bound_trials = Exp.pick ~quick:20 ~full:120 quick in
  let strategies =
    Exp.pick
      ~quick:[ Strategies.bfs; Strategies.high_degree ]
      ~full:(Strategies.weak_portfolio ())
      quick
  in
  let buf = Buffer.create 4096 in
  let checks = ref [] in
  List.iter
    (fun alpha ->
      let params = { Cooper_frieze.default with Cooper_frieze.alpha } in
      let rng = Rng.split_at (Rng.of_seed seed) (4000 + int_of_float (alpha *. 100.)) in
      let spec = { Searchability.default_spec with Searchability.trials } in
      let points =
        Searchability.measure rng
          ~make:(Searchability.cooper_frieze_instance params)
          ~strategies ~sizes ~spec
      in
      let bounds = estimate_bounds (Rng.split rng) params bound_sizes ~trials:bound_trials in
      Buffer.add_string buf
        (Exp.section (Printf.sprintf "T4: weak model, Cooper-Frieze graphs, alpha = %.2f" alpha));
      Buffer.add_string buf
        (Table.render
           ~headers:
             [ "n"; "window"; "event rate (MC)"; "±se"; "mean class |V|"; "estimated bound" ]
           ~rows:
             (List.map
                (fun (n, (est : Lower_bound.cf_estimate)) ->
                  [
                    string_of_int n;
                    string_of_int est.Lower_bound.window;
                    Exp.fmt ~digits:3 est.Lower_bound.event_rate;
                    Exp.fmt ~digits:3 est.Lower_bound.event_rate_se;
                    Exp.fmt ~digits:1 est.Lower_bound.mean_class_size;
                    Exp.fmt ~digits:2 est.Lower_bound.requests;
                  ])
                bounds)
           ());
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Exp.render_points points);
      Buffer.add_char buf '\n';
      let strategies_names =
        List.sort_uniq compare
          (List.map (fun (pt : Searchability.point) -> pt.Searchability.strategy) points)
      in
      let fits =
        List.map (fun s -> (s, Searchability.exponent_fit points ~strategy:s)) strategies_names
      in
      Buffer.add_string buf
        (Table.render ~headers:[ "strategy"; "fitted exponent" ]
           ~rows:(List.map (fun (s, fit) -> [ s; Exp.fmt_opt_exponent fit ]) fits)
           ());
      Buffer.add_char buf '\n';
      (* check: the cheapest strategy never undercuts the estimated
         bound at the sizes where the bound was estimated *)
      let min_means = Exp.min_mean_by_size points in
      let bound_ok =
        List.for_all
          (fun (n, (est : Lower_bound.cf_estimate)) ->
            match List.assoc_opt n min_means with
            | Some mean -> mean >= est.Lower_bound.requests
            | None -> true)
          bounds
      in
      checks :=
        (Printf.sprintf "alpha=%.2f: measured means above the estimated bound" alpha, bound_ok)
        :: !checks;
      let rate_positive =
        List.for_all
          (fun (_, (est : Lower_bound.cf_estimate)) -> est.Lower_bound.event_rate > 0.02)
          bounds
      in
      checks :=
        ( Printf.sprintf "alpha=%.2f: equivalence event keeps positive probability" alpha,
          rate_positive )
        :: !checks;
      if not quick then begin
        let best = Exp.best_strategy points in
        let fit = List.assoc best fits in
        checks :=
          ( Printf.sprintf "alpha=%.2f: best strategy (%s) exponent >= 0.35" alpha best,
            fit.Sf_stats.Regression.slope >= 0.35 )
          :: !checks
      end)
    alphas;
  {
    Exp.id = "T4";
    title = "Theorem 2: Omega(sqrt n) on Cooper-Frieze graphs, 0 < alpha < 1";
    output = Buffer.contents buf;
    checks = List.rev !checks;
  }
