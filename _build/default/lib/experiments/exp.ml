type result = {
  id : string;
  title : string;
  output : string;
  checks : (string * bool) list;
}

let section title = Printf.sprintf "%s\n%s\n" title (String.make (String.length title) '=')

let all_pass r = List.for_all snd r.checks
let failed_checks r = List.filter_map (fun (name, ok) -> if ok then None else Some name) r.checks

let fmt = Sf_stats.Table.fmt_float

let fmt_opt_exponent (fit : Sf_stats.Regression.fit) =
  Printf.sprintf "%.3f ± %.3f (r²=%.3f)" fit.Sf_stats.Regression.slope
    fit.Sf_stats.Regression.slope_std_error fit.Sf_stats.Regression.r_squared

let pick ~quick ~full is_quick = if is_quick then quick else full
let scales ~quick ~full is_quick = pick ~quick ~full is_quick

module Searchability = Sf_core.Searchability

let render_points points =
  let rows =
    List.map
      (fun (pt : Searchability.point) ->
        [
          string_of_int pt.Searchability.n;
          pt.Searchability.strategy;
          fmt ~digits:1 pt.Searchability.mean;
          fmt ~digits:1 pt.Searchability.ci95;
          fmt ~digits:1 pt.Searchability.median;
          fmt ~digits:1 pt.Searchability.q90;
          string_of_int pt.Searchability.timeouts;
        ])
      points
  in
  Sf_stats.Table.render
    ~headers:[ "n"; "strategy"; "mean"; "±95%"; "median"; "q90"; "timeouts" ]
    ~rows ()

let sizes_of points =
  List.sort_uniq compare (List.map (fun (pt : Searchability.point) -> pt.Searchability.n) points)

let min_mean_by_size points =
  List.map
    (fun n ->
      let at_n = List.filter (fun (pt : Searchability.point) -> pt.Searchability.n = n) points in
      let best =
        List.fold_left
          (fun acc (pt : Searchability.point) -> Float.min acc pt.Searchability.mean)
          infinity at_n
      in
      (n, best))
    (sizes_of points)

let scaling_figure ?(extra = []) points =
  let strategies =
    List.sort_uniq compare
      (List.map (fun (pt : Searchability.point) -> pt.Searchability.strategy) points)
  in
  let series =
    List.mapi
      (fun i name ->
        {
          Sf_stats.Plot.label = name;
          glyph = Sf_stats.Plot.default_glyphs.(i mod Array.length Sf_stats.Plot.default_glyphs);
          points =
            List.filter_map
              (fun (pt : Searchability.point) ->
                if pt.Searchability.strategy = name then
                  Some (float_of_int pt.Searchability.n, Float.max 1. pt.Searchability.mean)
                else None)
              points;
        })
      strategies
  in
  Sf_stats.Plot.render ~x_log:true ~y_log:true ~x_label:"n" ~y_label:"mean requests"
    (series @ extra)

let best_strategy points =
  let largest = List.fold_left max 0 (sizes_of points) in
  let at_n = List.filter (fun (pt : Searchability.point) -> pt.Searchability.n = largest) points in
  match at_n with
  | [] -> invalid_arg "Exp.best_strategy: no points"
  | first :: rest ->
    (List.fold_left
       (fun (acc : Searchability.point) (pt : Searchability.point) ->
         if pt.Searchability.mean < acc.Searchability.mean then pt else acc)
       first rest)
      .Searchability.strategy
