(** Experiment T4: Theorem 2 — weak-model Ω(√n) on Cooper–Frieze
    graphs, for several values of α, with the Monte-Carlo
    instantiation of the equivalence-event bound. *)

val t4_cooper_frieze : quick:bool -> seed:int -> Exp.result
