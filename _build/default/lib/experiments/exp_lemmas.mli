(** Experiments T5 and T6: the probabilistic machinery behind the
    theorems — Lemma 3's event-probability bound and Lemma 2's
    conditional vertex equivalence. *)

val t5_lemma3 : quick:bool -> seed:int -> Exp.result
(** Exact closed-form P(E_{a,b}) over the (p, a) grid vs the paper's
    e^{-(1-p)} bound, with Monte-Carlo cross-checks. *)

val t6_lemma2 : quick:bool -> seed:int -> Exp.result
(** Exhaustive exact verification of conditional equivalence at small
    t, plus conditioned/unconditioned permutation tests at larger
    sizes (the unconditioned wide-window test is the negative
    control). *)
