(** Experiments T8 and T9: the degree structure the theorems lean on —
    Móri's max-degree law [max deg ≈ t^p] (the strong-model premise)
    and the scale-free degree distributions of all three evolving
    models. *)

val t8_max_degree : quick:bool -> seed:int -> Exp.result
val t9_degree_law : quick:bool -> seed:int -> Exp.result
