(** Shared infrastructure of the experiment suite.

    Each experiment regenerates one "table" of EXPERIMENTS.md: it
    returns the rendered table text plus a list of named boolean
    {e shape checks} — the qualitative claims of the paper that the
    measurements must reproduce (who wins, which exponent, bound
    respected). The integration tests run every experiment in [quick]
    mode and assert all checks; the bench harness runs full mode and
    prints everything. *)

type result = {
  id : string;
  title : string;
  output : string; (** rendered tables/sections *)
  checks : (string * bool) list;
}

val section : string -> string
(** Underlined section heading. *)

val all_pass : result -> bool

val failed_checks : result -> string list

val fmt : ?digits:int -> float -> string
(** {!Sf_stats.Table.fmt_float}. *)

val fmt_opt_exponent : Sf_stats.Regression.fit -> string
(** "slope ± stderr (r²)" rendering of a scaling fit. *)

val scales : quick:int list -> full:int list -> bool -> int list
(** Pick the quick or full size grid. *)

val pick : quick:'a -> full:'a -> bool -> 'a

val render_points : Sf_core.Searchability.point list -> string
(** Table of measurement points: one row per (n, strategy). *)

val min_mean_by_size : Sf_core.Searchability.point list -> (int * float) list
(** For each size, the cheapest strategy's mean — the empirical
    adversary the lower bound must stay below. *)

val best_strategy : Sf_core.Searchability.point list -> string
(** Name of the strategy with the smallest mean at the largest size. *)

val scaling_figure :
  ?extra:Sf_stats.Plot.series list -> Sf_core.Searchability.point list -> string
(** Log–log figure of mean requests against n, one glyph per strategy,
    plus any [extra] series (typically the lower-bound curve). *)
