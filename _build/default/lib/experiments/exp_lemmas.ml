module Rng = Sf_prng.Rng
module Events = Sf_core.Events
module Equivalence = Sf_core.Equivalence
module Table = Sf_stats.Table

let t5_lemma3 ~quick ~seed =
  let ps = Exp.pick ~quick:[ 0.25; 0.75 ] ~full:[ 0.05; 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ] quick in
  let a_values =
    Exp.pick ~quick:[ 10; 100 ] ~full:[ 10; 100; 1_000; 10_000; 100_000; 1_000_000 ] quick
  in
  let mc_a_values = Exp.pick ~quick:[ 100 ] ~full:[ 100; 1_000 ] quick in
  let mc_trials = Exp.pick ~quick:500 ~full:3_000 quick in
  let rng = Rng.of_seed seed in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Exp.section "T5: Lemma 3 - P(E_{a,b}) for b = a + floor(sqrt(a-1))");
  let all_above = ref true in
  let rows =
    List.concat_map
      (fun p ->
        List.map
          (fun a ->
            let b = Events.window_end ~a in
            let exact = Events.prob_exact ~p ~a ~b in
            let bound = Events.lemma3_bound ~p in
            if exact < bound -. 1e-12 then all_above := false;
            [
              Exp.fmt ~digits:2 p;
              Sf_stats.Table.fmt_int_grouped a;
              Sf_stats.Table.fmt_int_grouped b;
              Exp.fmt ~digits:6 exact;
              Exp.fmt ~digits:6 bound;
              (if exact >= bound then "yes" else "NO");
            ])
          a_values)
      ps
  in
  Buffer.add_string buf
    (Table.render ~headers:[ "p"; "a"; "b"; "exact P(E)"; "e^{-(1-p)}"; "P >= bound" ] ~rows ());
  Buffer.add_char buf '\n';
  Buffer.add_string buf "Monte-Carlo cross-check of the closed form:\n";
  let mc_ok = ref true in
  let mc_rows =
    List.concat_map
      (fun p ->
        List.map
          (fun a ->
            let b = Events.window_end ~a in
            let exact = Events.prob_exact ~p ~a ~b in
            let est, se = Events.prob_monte_carlo rng ~p ~a ~b ~trials:mc_trials in
            let gap = Float.abs (est -. exact) in
            if gap > (4. *. se) +. 1e-6 then mc_ok := false;
            [
              Exp.fmt ~digits:2 p;
              Sf_stats.Table.fmt_int_grouped a;
              Exp.fmt ~digits:4 exact;
              Exp.fmt ~digits:4 est;
              Exp.fmt ~digits:4 se;
            ])
          mc_a_values)
      (Exp.pick ~quick:[ 0.5 ] ~full:[ 0.25; 0.5; 0.9 ] quick)
  in
  Buffer.add_string buf
    (Table.render ~headers:[ "p"; "a"; "exact"; "MC estimate"; "MC se" ] ~rows:mc_rows ());
  {
    Exp.id = "T5";
    title = "Lemma 3: the containment event has constant probability";
    output = Buffer.contents buf;
    checks =
      [
        ("exact P(E_{a,b}) >= e^{-(1-p)} over the whole grid", !all_above);
        ("Monte-Carlo within 4 standard errors of the closed form", !mc_ok);
      ];
  }

let t6_lemma2 ~quick ~seed =
  let exact_cases =
    Exp.pick
      ~quick:[ (0.5, 7, 3, 6); (0.8, 7, 4, 6) ]
      ~full:[ (0.5, 8, 4, 7); (0.8, 8, 3, 6); (0.3, 9, 5, 8); (1.0, 7, 3, 6); (0.6, 9, 4, 8) ]
      quick
  in
  let rng = Rng.of_seed seed in
  let buf = Buffer.create 4096 in
  let checks = ref [] in
  Buffer.add_string buf
    (Exp.section "T6: Lemma 2 - exact conditional equivalence by exhaustive enumeration");
  let rows =
    List.map
      (fun (p, t, a, b) ->
        let r = Equivalence.exact ~p ~t ~a ~b in
        checks :=
          ( Printf.sprintf "exact equivalence at p=%.2f t=%d window [%d,%d]" p t (a + 1) b,
            r.Equivalence.max_discrepancy < 1e-12 )
          :: !checks;
        [
          Exp.fmt ~digits:2 p;
          string_of_int t;
          Printf.sprintf "[%d,%d]" (a + 1) b;
          Sf_stats.Table.fmt_int_grouped r.Equivalence.n_outcomes;
          Exp.fmt ~digits:6 r.Equivalence.event_prob;
          string_of_int r.Equivalence.permutations_checked;
          Sf_stats.Table.fmt_sci r.Equivalence.max_discrepancy;
        ])
      exact_cases
  in
  Buffer.add_string buf
    (Table.render
       ~headers:[ "p"; "t"; "window V"; "outcomes"; "P(E)"; "sigmas"; "max discrepancy" ]
       ~rows ());
  Buffer.add_char buf '\n';
  (* exact rational certificates: zero floating point *)
  Buffer.add_string buf
    "Exact rational certificates (no floating point - fraction-by-fraction equality):\n";
  let rational_cases =
    Exp.pick ~quick:[ (1, 2, 7, 3, 6) ]
      ~full:[ (1, 2, 8, 4, 7); (3, 4, 9, 5, 8); (1, 10, 7, 3, 6); (9, 10, 9, 4, 8) ]
      quick
  in
  let rational_rows =
    List.map
      (fun (pn, pd, t, a, b) ->
        let r = Equivalence.exact_rational ~p_num:pn ~p_den:pd ~t ~a ~b in
        checks :=
          ( Printf.sprintf "rational certificate p=%d/%d t=%d window [%d,%d]" pn pd t (a + 1) b,
            r.Equivalence.equal )
          :: !checks;
        [
          Printf.sprintf "%d/%d" pn pd;
          string_of_int t;
          Printf.sprintf "[%d,%d]" (a + 1) b;
          Sf_core.Rational.to_string r.Equivalence.event_prob;
          (if r.Equivalence.equal then "laws exactly equal" else "MISMATCH");
        ])
      rational_cases
  in
  Buffer.add_string buf
    (Table.render ~headers:[ "p"; "t"; "window V"; "P(E) exact fraction"; "verdict" ]
       ~rows:rational_rows ());
  Buffer.add_char buf '\n';
  Buffer.add_string buf "Permutation tests at experiment scale (statistic: window indegree/father profile):\n";
  let mc_trials = Exp.pick ~quick:600 ~full:3_000 quick in
  let a = Exp.pick ~quick:30 ~full:80 quick in
  let b = Events.window_end ~a in
  let sigma = Equivalence.random_window_sigma rng ~t:b ~a ~b in
  let conditioned =
    Equivalence.monte_carlo rng ~p:0.5 ~t:b ~a ~b ~trials:mc_trials ~sigma ~conditioned:true
  in
  let t_neg = Exp.pick ~quick:40 ~full:80 quick in
  (* negative control: an old unconditioned window [3, 7]; vertex 3 is
     stochastically much richer than vertex 7, so swapping them must
     be detected *)
  let sigma_neg = Sf_graph.Permute.transposition t_neg 3 7 in
  let unconditioned =
    Equivalence.monte_carlo rng ~p:0.9 ~t:t_neg ~a:2 ~b:7 ~trials:mc_trials ~sigma:sigma_neg
      ~conditioned:false
  in
  Buffer.add_string buf
    (Table.render
       ~headers:[ "setup"; "trials"; "chi^2"; "dof"; "p-value"; "TV distance" ]
       ~rows:
         [
           [
             Printf.sprintf "conditioned on E, window [%d,%d]" (a + 1) b;
             string_of_int conditioned.Equivalence.trials;
             Exp.fmt ~digits:2 conditioned.Equivalence.chi_square;
             string_of_int conditioned.Equivalence.dof;
             Exp.fmt ~digits:4 conditioned.Equivalence.p_value;
             Exp.fmt ~digits:4 conditioned.Equivalence.tv_distance;
           ];
           [
             Printf.sprintf "negative control: unconditioned, window [3,7] of t=%d" t_neg;
             string_of_int unconditioned.Equivalence.trials;
             Exp.fmt ~digits:2 unconditioned.Equivalence.chi_square;
             string_of_int unconditioned.Equivalence.dof;
             Sf_stats.Table.fmt_sci unconditioned.Equivalence.p_value;
             Exp.fmt ~digits:4 unconditioned.Equivalence.tv_distance;
           ];
         ]
       ());
  checks :=
    ("conditioned permutation test does not reject", conditioned.Equivalence.p_value > 0.001)
    :: ("negative control rejects", unconditioned.Equivalence.p_value < 1e-3)
    :: !checks;
  {
    Exp.id = "T6";
    title = "Lemma 2: conditional vertex equivalence, exactly and statistically";
    output = Buffer.contents buf;
    checks = List.rev !checks;
  }
