(** The experiment registry: every table of EXPERIMENTS.md, runnable by
    id from the bench harness, the CLI and the tests. *)

type entry = {
  id : string;
  title : string;
  run : quick:bool -> seed:int -> Exp.result;
}

val all : entry list
(** In presentation order T1 … T14. *)

val find : string -> entry option
(** Case-insensitive lookup by id. *)

val ids : unit -> string list
