(** Experiments T15–T18: extensions beyond the paper's literal
    statements, probing the mechanisms its proofs rely on.

    - T15 — degree–degree dependence: the structural difference the
      paper's "related works" section asserts between evolving and
      pure random graphs, measured (assortativity, knn slope,
      age–degree coupling, clustering, degeneracy).
    - T16 — total-degree models: the paper's concluding remark — for
      BA/LCD-style models the maximum degree grows like √t, so the
      strong-model corollary becomes vacuous there.
    - T17 — timestamp-leak ablation: edge-id timestamps break the
      exchangeability {e proof}; do they break the {e bound}?
      (Measured: no material gain for the leak-exploiting strategy.)
    - T18 — window-size ablation: the Lemma-1 bound as a function of
      the window width; the paper's ⌊√(a−1)⌋ choice is within a small
      constant of the exact optimum. *)

val t15_degree_correlations : quick:bool -> seed:int -> Exp.result
val t16_total_degree_models : quick:bool -> seed:int -> Exp.result
val t17_timestamp_leak : quick:bool -> seed:int -> Exp.result
val t18_window_ablation : quick:bool -> seed:int -> Exp.result

val t21_attack_tolerance : quick:bool -> seed:int -> Exp.result
(** Albert–Jeong–Barabási attack tolerance: scale-free graphs shrug
    off random vertex failures but shatter when the same number of
    {e hubs} is removed; the Erdős–Rényi control degrades the same
    way under both. The hub dependence that also concentrates search
    traffic in every protocol studied here. *)

val t23_open_problem : quick:bool -> seed:int -> Exp.result
(** Exploratory: strong-model search where the paper's bound is
    vacuous (p ≥ 1/2) — the regime of its closing open problem. No
    implemented strategy turns polylogarithmic there. *)
