module Rng = Sf_prng.Rng
module Ugraph = Sf_graph.Ugraph
module Correlation = Sf_graph.Correlation
module Clustering = Sf_graph.Clustering
module Kcore = Sf_graph.Kcore
module Metrics = Sf_graph.Metrics
module Lower_bound = Sf_core.Lower_bound
module Table = Sf_stats.Table

let t15_degree_correlations ~quick ~seed =
  let n = Exp.pick ~quick:4_000 ~full:30_000 quick in
  let master = Rng.of_seed seed in
  let buf = Buffer.create 2048 in
  let checks = ref [] in
  Buffer.add_string buf
    (Exp.section
       "T15: neighbour-degree dependence - evolving vs pure random scale-free graphs");
  let stats = Hashtbl.create 8 in
  let models =
    [
      ("Mori p=0.75 m=2", fun rng -> Sf_gen.Mori.graph rng ~p:0.75 ~m:2 ~n);
      ( "Cooper-Frieze",
        fun rng ->
          Sf_gen.Cooper_frieze.generate_n_vertices rng Sf_gen.Cooper_frieze.default ~n );
      ("LCD (BA) m=2", fun rng -> Sf_gen.Lcd.generate rng ~n ~m:2);
      ( "config model k=2.33",
        fun rng -> Sf_gen.Config_model.searchable_power_law rng ~n ~exponent:2.33 () );
    ]
  in
  let rows =
    List.mapi
      (fun i (name, make) ->
        let rng = Rng.split_at master (1500 + i) in
        let u = Ugraph.of_digraph (make rng) in
        let assort = Correlation.assortativity u in
        let knn = Correlation.knn_slope u in
        let age = Correlation.age_degree_spearman u in
        let clustering = Clustering.average_local u in
        let degeneracy = Kcore.degeneracy u in
        Hashtbl.replace stats name (assort, knn, age);
        [
          name;
          Exp.fmt ~digits:3 assort;
          Exp.fmt ~digits:3 knn;
          Exp.fmt ~digits:3 age;
          Exp.fmt ~digits:4 clustering;
          string_of_int degeneracy;
        ])
      models
  in
  Buffer.add_string buf
    (Table.render
       ~headers:
         [ "model"; "assortativity"; "knn slope"; "age-degree rho"; "clustering"; "degeneracy" ]
       ~rows ());
  Buffer.add_string buf
    "\nage-degree rho: Spearman correlation of insertion time with degree.\n\
     Evolving models couple age and degree (rho strongly negative) and bend the\n\
     knn curve; the configuration model keeps neighbour degrees near-independent\n\
     - which is why mean-field search analysis works there and fails here.\n";
  let get name = Hashtbl.find stats name in
  let _, mori_knn, mori_age = get "Mori p=0.75 m=2" in
  let _, _, cf_age = get "Cooper-Frieze" in
  let _, conf_knn, conf_age = get "config model k=2.33" in
  checks :=
    [
      ( Printf.sprintf "Mori age-degree coupling strong (rho = %.2f < -0.25)" mori_age,
        mori_age < -0.25 );
      ( Printf.sprintf "Cooper-Frieze age-degree coupling strong (rho = %.2f < -0.25)" cf_age,
        cf_age < -0.25 );
      ( Printf.sprintf "config model age-degree free (|rho| = %.3f < 0.05)" conf_age,
        Float.abs conf_age < 0.05 );
      ( Printf.sprintf "Mori knn slope (%.2f) well below config's (%.2f)" mori_knn conf_knn,
        mori_knn < conf_knn -. 0.2 );
    ];
  {
    Exp.id = "T15";
    title = "Evolving graphs correlate neighbour degrees; pure random graphs do not";
    output = Buffer.contents buf;
    checks = !checks;
  }

let max_degree_prefix_series g ~checkpoints =
  (* max total degree of the prefix graph on vertices 1..t, replayed
     from the edge timeline *)
  let n = Sf_graph.Digraph.n_vertices g in
  let deg = Array.make n 0 in
  let running = ref 0 in
  let results = Hashtbl.create 8 in
  let sorted_cps = List.sort_uniq compare checkpoints in
  let cps = ref sorted_cps in
  (* edges are timestamped; vertex t's arrival edges come before any
     later vertex's, so processing edges in id order while tracking the
     max suffices as long as checkpoints are sampled at vertex
     boundaries (LCD: edge id k-1 belongs to vertex k). *)
  Sf_graph.Digraph.iter_edges g (fun e ->
      deg.(e.Sf_graph.Digraph.src - 1) <- deg.(e.Sf_graph.Digraph.src - 1) + 1;
      deg.(e.Sf_graph.Digraph.dst - 1) <- deg.(e.Sf_graph.Digraph.dst - 1) + 1;
      running := max !running (max deg.(e.Sf_graph.Digraph.src - 1) deg.(e.Sf_graph.Digraph.dst - 1));
      match !cps with
      | t :: rest when e.Sf_graph.Digraph.id = t - 1 ->
        Hashtbl.replace results t !running;
        cps := rest
      | _ -> ());
  List.map (fun t -> (t, Hashtbl.find results t)) sorted_cps

let t16_total_degree_models ~quick ~seed =
  let checkpoints =
    Exp.pick ~quick:[ 512; 2_048; 8_192 ] ~full:[ 1_024; 4_096; 16_384; 65_536; 262_144 ] quick
  in
  let trials = Exp.pick ~quick:3 ~full:8 quick in
  let master = Rng.of_seed seed in
  let buf = Buffer.create 2048 in
  let t_max = List.fold_left max 2 checkpoints in
  Buffer.add_string buf
    (Exp.section "T16: total-degree preferential attachment - max degree ~ sqrt(t)");
  (* mean max-degree series over LCD trees *)
  let sums = Hashtbl.create 8 in
  for trial = 0 to trials - 1 do
    let rng = Rng.split_at master (1600 + trial) in
    let g = Sf_gen.Lcd.tree1 rng ~t:t_max in
    List.iter
      (fun (t, m) ->
        Hashtbl.replace sums t (m + Option.value ~default:0 (Hashtbl.find_opt sums t)))
      (max_degree_prefix_series g ~checkpoints)
  done;
  let series =
    List.map
      (fun t -> (t, float_of_int (Hashtbl.find sums t) /. float_of_int trials))
      (List.sort_uniq compare checkpoints)
  in
  let fit =
    Sf_stats.Regression.log_log (List.map (fun (t, m) -> (float_of_int t, m)) series)
  in
  Buffer.add_string buf
    (Table.render
       ~headers:[ "t"; "mean max degree (LCD)"; "sqrt(t)" ]
       ~rows:
         (List.map
            (fun (t, m) ->
              [
                Sf_stats.Table.fmt_int_grouped t;
                Exp.fmt ~digits:1 m;
                Exp.fmt ~digits:1 (sqrt (float_of_int t));
              ])
            series)
       ());
  Buffer.add_string buf
    (Printf.sprintf "\nfitted growth exponent: %s (predicted 1/2)\n" (Exp.fmt_opt_exponent fit));
  (* the paper's closing remark, in numbers *)
  let n = List.fold_left max 2 checkpoints in
  let lcd_max = snd (List.nth series (List.length series - 1)) in
  let weak_bound = Lower_bound.asymptotic_theorem1 ~p:1.0 ~n in
  Buffer.add_string buf
    (Printf.sprintf
       "\nStrong-model corollary check at n = %s: the weak bound is ~%.0f requests,\n\
        but the simulation loses a factor of the max degree ~%.0f >= sqrt(n) ~%.0f,\n\
        so the derived strong-model bound collapses to O(1) - 'making our upper\n\
        bound trivial', as the paper concludes for total-degree models. The\n\
        indegree-based Mori rephrasing (max degree t^p, p < 1/2) is what rescues it.\n"
       (Sf_stats.Table.fmt_int_grouped n)
       weak_bound lcd_max
       (sqrt (float_of_int n)));
  let slope = fit.Sf_stats.Regression.slope in
  {
    Exp.id = "T16";
    title = "BA/LCD max degree grows like sqrt(t): the strong bound is vacuous there";
    output = Buffer.contents buf;
    checks =
      [
        ( Printf.sprintf "LCD max-degree exponent %.3f within 0.1 of 1/2" slope,
          Float.abs (slope -. Sf_gen.Lcd.max_degree_exponent) < 0.1 );
        ( "max degree at the largest size is at least sqrt(n)/2",
          lcd_max >= sqrt (float_of_int n) /. 2. );
      ];
  }

let t17_timestamp_leak ~quick ~seed =
  let p = 0.5 in
  let sizes = Exp.scales ~quick:[ 1_000 ] ~full:[ 4_000; 16_000 ] quick in
  let trials = Exp.pick ~quick:5 ~full:15 quick in
  let master = Rng.of_seed seed in
  let buf = Buffer.create 2048 in
  let checks = ref [] in
  Buffer.add_string buf
    (Exp.section "T17: does leaking edge timestamps break the lower bound?");
  Buffer.add_string buf
    "Raw edge ids in a Mori tree are insertion timestamps; with them visible the\n\
     exchangeability argument behind Lemma 2 no longer applies (sigma permutes\n\
     timestamps). The leak-exploiting strategy recognises the target's own edge\n\
     for free once the father is discovered. Measured with the leak open\n\
     (obfuscate = false) and sealed (the default oracle):\n\n";
  let rows = ref [] in
  List.iteri
    (fun si n ->
      let bound = Lower_bound.theorem1 ~p ~m:1 ~n in
      let measure ~obfuscate strategy =
        let costs = Sf_stats.Summary.create () in
        for trial = 0 to trials - 1 do
          let rng = Rng.split_at master ((si * 10_000) + (if obfuscate then 5_000 else 0) + trial) in
          let g = Sf_gen.Mori.tree rng ~p ~t:bound.Lower_bound.graph_size in
          let u = Ugraph.of_digraph g in
          let outcome =
            Sf_search.Runner.search ~obfuscate ~stop_at:Sf_search.Runner.At_neighbor ~rng u
              strategy ~source:1 ~target:n
          in
          let cost =
            Option.value
              ~default:outcome.Sf_search.Runner.total_requests
              outcome.Sf_search.Runner.to_neighbor
          in
          Sf_stats.Summary.add_int costs cost
        done;
        Sf_stats.Summary.mean costs
      in
      let cheat_raw = measure ~obfuscate:false Sf_search.Strategies.timestamp_cheat in
      let cheat_sealed = measure ~obfuscate:true Sf_search.Strategies.timestamp_cheat in
      let bfs_raw = measure ~obfuscate:false Sf_search.Strategies.bfs in
      rows :=
        [
          string_of_int n;
          Exp.fmt ~digits:1 bound.Lower_bound.requests;
          Exp.fmt ~digits:1 cheat_raw;
          Exp.fmt ~digits:1 cheat_sealed;
          Exp.fmt ~digits:1 bfs_raw;
        ]
        :: !rows;
      checks :=
        ( Printf.sprintf "n=%d: even with the leak, cost %.0f >= bound %.1f" n cheat_raw
            bound.Lower_bound.requests,
          cheat_raw >= bound.Lower_bound.requests )
        :: ( Printf.sprintf "n=%d: the leak gives no order-of-magnitude gain (%.0f vs %.0f)" n
               cheat_raw cheat_sealed,
             cheat_raw > cheat_sealed /. 10. )
        :: !checks)
    sizes;
  Buffer.add_string buf
    (Table.render
       ~headers:
         [ "n"; "Lemma-1 bound"; "cheat (leak open)"; "cheat (sealed)"; "bfs (leak open)" ]
       ~rows:(List.rev !rows) ());
  Buffer.add_string buf
    "\n-> knowing *which* edge is the target's does not reveal *where* it is: the\n\
    \   father of a fresh vertex is spread nearly uniformly, so the measured cost\n\
    \   stays at the unsealed oracle's level and far above the bound. The proof\n\
    \   needs the timestamp-free model; the phenomenon itself appears robust.\n";
  {
    Exp.id = "T17";
    title = "Timestamp-leak ablation: the proof breaks, the phenomenon survives";
    output = Buffer.contents buf;
    checks = List.rev !checks;
  }

(* --- T21: attack tolerance ------------------------------------------- *)

let survivors_after_removal rng g ~fraction ~mode =
  let n = Sf_graph.Digraph.n_vertices g in
  let k = int_of_float (fraction *. float_of_int n) in
  let doomed = Array.make n false in
  (match mode with
  | `Random ->
    Array.iter
      (fun v -> doomed.(v) <- true)
      (Sf_prng.Shuffle.sample_without_replacement rng ~k ~n)
  | `Attack ->
    (* remove the k highest-degree vertices *)
    let order = Array.init n (fun i -> i) in
    let deg = Sf_graph.Metrics.total_degrees g in
    Array.sort (fun a b -> compare deg.(b) deg.(a)) order;
    for i = 0 to k - 1 do
      doomed.(order.(i)) <- true
    done);
  let kept = ref [] in
  for v = n downto 1 do
    if not (doomed.(v - 1)) then kept := v :: !kept
  done;
  fst (Sf_graph.Subgraph.induced g ~vertices:!kept)

let giant_fraction g ~original_n =
  let u = Ugraph.of_digraph g in
  let sizes = Sf_graph.Traversal.component_sizes u in
  let giant = Array.fold_left max 0 sizes in
  float_of_int giant /. float_of_int original_n

let t21_attack_tolerance ~quick ~seed =
  let n = Exp.pick ~quick:3_000 ~full:20_000 quick in
  let fractions = Exp.pick ~quick:[ 0.1; 0.3 ] ~full:[ 0.05; 0.1; 0.2; 0.4 ] quick in
  let master = Rng.of_seed seed in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Exp.section "T21: attack tolerance - random failures vs targeted hub removal");
  let sf = Sf_gen.Lcd.generate (Rng.split_at master 2100) ~n ~m:2 in
  let er = Sf_gen.Erdos_renyi.gnm (Rng.split_at master 2101) ~n ~m:(Sf_graph.Digraph.n_edges sf) in
  let results = Hashtbl.create 32 in
  let rows = ref [] in
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun fraction ->
          List.iter
            (fun (mname, mode) ->
              let rng = Rng.split_at master (2110 + int_of_float (fraction *. 100.)) in
              let survivor = survivors_after_removal rng g ~fraction ~mode in
              let frac = giant_fraction survivor ~original_n:n in
              Hashtbl.replace results (gname, fraction, mname) frac;
              rows :=
                [
                  gname;
                  Exp.fmt ~digits:2 fraction;
                  mname;
                  Exp.fmt ~digits:3 frac;
                ]
                :: !rows)
            [ ("random failure", `Random); ("hub attack", `Attack) ])
        fractions)
    [ ("scale-free (LCD m=2)", sf); ("Erdos-Renyi control", er) ];
  Buffer.add_string buf
    (Table.render
       ~headers:[ "graph"; "removed fraction"; "removal mode"; "giant component / n" ]
       ~rows:(List.rev !rows) ());
  Buffer.add_string buf
    "\ngiant component sizes are relative to the ORIGINAL vertex count, so even a\n\
     perfectly robust graph shows 1 - f after removing a fraction f.\n";
  let get g f m = Hashtbl.find results (g, f, m) in
  let f_hi = List.nth fractions (List.length fractions - 1) in
  let sf_name = "scale-free (LCD m=2)" and er_name = "Erdos-Renyi control" in
  let sf_random = get sf_name f_hi "random failure" in
  let sf_attack = get sf_name f_hi "hub attack" in
  let er_random = get er_name f_hi "random failure" in
  let er_attack = get er_name f_hi "hub attack" in
  let checks =
    [
      ( Printf.sprintf "scale-free robust to random failure (%.2f >= 0.8 x (1-f))" sf_random,
        sf_random >= 0.8 *. (1. -. f_hi) );
      ( Printf.sprintf "hub attack shatters the scale-free graph (%.2f < %.2f / 2)" sf_attack
          sf_random,
        sf_attack < sf_random /. 2. );
      ( Printf.sprintf "attack hits scale-free harder than ER (%.2f < %.2f)"
          (sf_attack /. Float.max 1e-9 sf_random)
          (er_attack /. Float.max 1e-9 er_random),
        sf_attack /. Float.max 1e-9 sf_random < er_attack /. Float.max 1e-9 er_random );
    ]
  in
  {
    Exp.id = "T21";
    title = "Hubs are the strength and the weakness: attack vs failure";
    output = Buffer.contents buf;
    checks;
  }

(* --- T23: the open problem ------------------------------------------- *)

let t23_open_problem ~quick ~seed =
  (* The paper closes: polylog searchability of scale-free graphs
     remains open — its strong-model bound says nothing for p >= 1/2.
     Probe that regime: if some strategy were polylog there, its
     fitted exponent would collapse toward 0 as n grows. *)
  let ps = Exp.pick ~quick:[ 0.6 ] ~full:[ 0.5; 0.7; 0.9 ] quick in
  let sizes = Exp.scales ~quick:[ 300; 900 ] ~full:[ 2_000; 8_000; 32_000 ] quick in
  let trials = Exp.pick ~quick:4 ~full:12 quick in
  let master = Rng.of_seed seed in
  let buf = Buffer.create 2048 in
  let checks = ref [] in
  Buffer.add_string buf
    (Exp.section
       "T23: the paper's open problem - strong-model search where the bound is vacuous (p >= 1/2)");
  Buffer.add_string buf
    "For p >= 1/2 the strong-model lower bound n^{1/2 - p} is trivial, and the\n\
     paper leaves polylog navigability open. Exploratory measurement (not a\n\
     theorem): fitted exponents of the strong portfolio in that regime.\n\n";
  List.iter
    (fun p ->
      let rng = Rng.split_at master (2300 + int_of_float (p *. 100.)) in
      let spec =
        { Sf_core.Searchability.default_spec with Sf_core.Searchability.trials }
      in
      let points =
        Sf_core.Searchability.measure rng
          ~make:(Sf_core.Searchability.mori_instance ~p ~m:1)
          ~strategies:(Sf_search.Strategies.strong_portfolio ())
          ~sizes ~spec
      in
      let names =
        List.sort_uniq compare
          (List.map
             (fun (pt : Sf_core.Searchability.point) -> pt.Sf_core.Searchability.strategy)
             points)
      in
      let fits =
        List.map
          (fun s -> (s, Sf_core.Searchability.exponent_fit points ~strategy:s))
          names
      in
      Buffer.add_string buf (Printf.sprintf "p = %.2f:\n" p);
      Buffer.add_string buf
        (Table.render ~headers:[ "strategy"; "fitted exponent" ]
           ~rows:(List.map (fun (s, f) -> [ s; Exp.fmt_opt_exponent f ]) fits)
           ());
      Buffer.add_char buf '\n';
      (* the cheapest strategy is the navigability candidate; at quick
         scale two-point fits are noise, so fall back to a super-log
         cost floor *)
      let best = Exp.best_strategy points in
      let largest = List.fold_left max 0 sizes in
      let best_mean =
        (List.find
           (fun (pt : Sf_core.Searchability.point) ->
             pt.Sf_core.Searchability.n = largest
             && pt.Sf_core.Searchability.strategy = best)
           points)
          .Sf_core.Searchability.mean
      in
      if quick then
        (* tiny instances cannot separate polylog from polynomial (the
           hub shortcut already bites at n < 1000); just assert the
           probe produced sane measurements *)
        checks :=
          ( Printf.sprintf "p=%.2f: probe ran (cheapest %s paid %.0f requests)" p best
              best_mean,
            best_mean >= 1. )
          :: !checks
      else begin
        let fit = List.assoc best fits in
        let slope = fit.Sf_stats.Regression.slope in
        (* measured dichotomy: moderate p stays polynomial; at p near 1
           the indegree hubs grow like t^p and one whole-neighbourhood
           answer covers most of the graph, so strong-model search
           collapses to near-constant cost *)
        if p <= 0.75 then
          checks :=
            ( Printf.sprintf
                "p=%.2f: cheapest strategy (%s) stays polynomial (exponent %.2f > 0.25)" p
                best slope,
              slope > 0.25 )
            :: !checks
        else
          checks :=
            ( Printf.sprintf
                "p=%.2f: hub regime - strong search nearly size-free (exponent %.2f < 0.25)" p
                slope,
              slope < 0.25 )
            :: !checks
      end)
    ps;
  Buffer.add_string buf
    "-> a measured dichotomy: at moderate p every strategy stays firmly\n\
    \   polynomial, but as p -> 1 the max indegree grows like t^p and a single\n\
    \   whole-neighbourhood answer at a hub covers most of the graph - the\n\
    \   cheapest strong strategy becomes nearly size-free. Both faces are\n\
    \   consistent with the paper: the weak-model Omega(sqrt n) holds for ALL p\n\
    \   (T1 verifies it at p = 0.9 too - paying per edge kills the hub\n\
    \   shortcut), while the strong model is only constrained for p < 1/2,\n\
    \   and this probe suggests that gap is real, not an artifact of the proof.\n";
  {
    Exp.id = "T23";
    title = "Probing the open problem: a strong-model dichotomy across p";
    output = Buffer.contents buf;
    checks = List.rev !checks;
  }

let t18_window_ablation ~quick ~seed =
  ignore seed;
  let ps = Exp.pick ~quick:[ 0.5 ] ~full:[ 0.1; 0.5; 0.9 ] quick in
  let a_values = Exp.pick ~quick:[ 1_000 ] ~full:[ 1_000; 100_000 ] quick in
  let buf = Buffer.create 2048 in
  let checks = ref [] in
  Buffer.add_string buf
    (Exp.section "T18: window-size ablation - is the paper's sqrt(a) window optimal?");
  let rows = ref [] in
  List.iter
    (fun p ->
      List.iter
        (fun a ->
          let root = int_of_float (sqrt (float_of_int (a - 1))) in
          let widths = [ root / 4; root / 2; root; 2 * root; 4 * root ] in
          let tradeoff = Lower_bound.window_tradeoff ~p ~a ~widths in
          let best = Lower_bound.optimal_window ~p ~a () in
          let canonical = List.nth tradeoff 2 in
          List.iter
            (fun (c : Lower_bound.window_choice) ->
              rows :=
                [
                  Exp.fmt ~digits:1 p;
                  Sf_stats.Table.fmt_int_grouped a;
                  string_of_int c.Lower_bound.width;
                  Exp.fmt ~digits:4 c.Lower_bound.event_prob;
                  Exp.fmt ~digits:2 c.Lower_bound.requests;
                  (if c.Lower_bound.width = root then "<- paper's choice" else "");
                ]
                :: !rows)
            tradeoff;
          rows :=
            [
              Exp.fmt ~digits:1 p;
              Sf_stats.Table.fmt_int_grouped a;
              string_of_int best.Lower_bound.width;
              Exp.fmt ~digits:4 best.Lower_bound.event_prob;
              Exp.fmt ~digits:2 best.Lower_bound.requests;
              "<- exact optimum";
            ]
            :: !rows;
          (* continuous theory: log P ~ -(1-p) w^2 / (2a), so the
             optimum sits at w* ~ sqrt(a / (1-p)) with gain
             e^{-1/2} / (sqrt(1-p) e^{-(1-p)/2}) over the paper's
             sqrt(a) window — drifting above sqrt(a) as p -> 1, where
             the containment event is nearly free *)
          let w_theory = sqrt (float_of_int a /. (1. -. p)) in
          let predicted_gain =
            exp (-0.5) /. (sqrt (1. -. p) *. exp (-.(1. -. p) /. 2.))
          in
          let ratio = best.Lower_bound.requests /. canonical.Lower_bound.requests in
          checks :=
            ( Printf.sprintf
                "p=%.1f a=%d: optimal width %d ~ theory sqrt(a/(1-p)) = %.0f" p a
                best.Lower_bound.width w_theory,
              float_of_int best.Lower_bound.width >= w_theory /. 3.
              && float_of_int best.Lower_bound.width <= 3. *. w_theory )
            :: ( Printf.sprintf
                   "p=%.1f a=%d: gain over the paper's window %.2fx ~ predicted %.2fx" p a
                   ratio predicted_gain,
                 ratio <= 1.6 *. predicted_gain && ratio >= predicted_gain /. 1.6 )
            :: !checks)
        a_values)
    ps;
  Buffer.add_string buf
    (Table.render
       ~headers:[ "p"; "a"; "width w"; "P(E_{a,a+w})"; "bound w P(E)/2"; "" ]
       ~rows:(List.rev !rows) ());
  Buffer.add_string buf
    "\n-> the bound rises linearly while P(E) stays ~constant up to w ~ sqrt(a/(1-p)),\n\
    \   then exponential decay takes over. The exact optimum sits at\n\
    \   sqrt(a/(1-p)) - the paper's sqrt(a) choice is the right order for every p\n\
    \   and within a small constant for moderate p; as p -> 1 the containment\n\
    \   event becomes free and wider windows strengthen the bound (in the p = 1\n\
    \   star limit it reaches the trivially correct ~n/2).\n";
  {
    Exp.id = "T18";
    title = "The sqrt(a) equivalence window is (near-)optimal for Lemma 1";
    output = Buffer.contents buf;
    checks = List.rev !checks;
  }
