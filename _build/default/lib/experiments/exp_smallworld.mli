(** Experiments T10 and T12: the small-world contrast.

    T10 — the scale-free models have logarithmic diameter, so the
    Ω(√n) search bound is a genuine gap between {e distance} and
    {e searchability} (the paper's concluding point).

    T12 — Kleinberg's lattice: with the metric exponent r = 2 greedy
    routing is polylogarithmic; away from 2 it is polynomial. The kind
    of navigability scale-free graphs lack. *)

val t10_diameter : quick:bool -> seed:int -> Exp.result
val t12_kleinberg : quick:bool -> seed:int -> Exp.result
