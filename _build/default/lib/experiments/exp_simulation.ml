module Rng = Sf_prng.Rng
module Query_sim = Sf_sim.Query_sim
module Network = Sf_sim.Network
module Table = Sf_stats.Table

type row = {
  name : string;
  hit_rate : float;
  mean_messages : float;
  mean_time : float;
}

let run_protocol ~rng net (name, protocol) ~trials =
  let n = Network.n_nodes net in
  let hits = ref 0 in
  let messages = Sf_stats.Summary.create () in
  let times = Sf_stats.Summary.create () in
  for trial = 1 to trials do
    let trial_rng = Rng.split_at rng trial in
    let source = 1 + Rng.int trial_rng n in
    let target = 1 + Rng.int trial_rng n in
    if source <> target then begin
      let res =
        Query_sim.query ~rng:trial_rng net protocol ~source
          ~holders:(Query_sim.single_target net target)
      in
      Sf_stats.Summary.add_int messages res.Query_sim.messages;
      if res.Query_sim.hit then begin
        incr hits;
        match res.Query_sim.hit_time with
        | Some t -> Sf_stats.Summary.add times t
        | None -> ()
      end
    end
  done;
  {
    name;
    hit_rate = float_of_int !hits /. float_of_int trials;
    mean_messages = Sf_stats.Summary.mean messages;
    mean_time = Sf_stats.Summary.mean times;
  }

let t19_protocol_tradeoff ~quick ~seed =
  let n = Exp.pick ~quick:3_000 ~full:20_000 quick in
  let trials = Exp.pick ~quick:10 ~full:30 quick in
  let master = Rng.of_seed seed in
  let g =
    Sf_gen.Config_model.searchable_power_law (Rng.split_at master 1900) ~n ~exponent:2.3 ()
  in
  let net = Network.create ~latency:(Network.Uniform (0.5, 1.5)) (Sf_graph.Ugraph.of_digraph g) in
  let n' = Network.n_nodes net in
  let walker_ttl = max 200 (n' / 8) in
  let protocols =
    [
      ("flood ttl=7", Query_sim.Flood { ttl = 7 });
      ("1 walker", Query_sim.K_walkers { k = 1; ttl = walker_ttl });
      ("16 walkers", Query_sim.K_walkers { k = 16; ttl = walker_ttl });
      ("64 walkers", Query_sim.K_walkers { k = 64; ttl = walker_ttl });
      ("percolation q=0.5 ttl=10", Query_sim.Percolation { q = 0.5; ttl = 10 });
    ]
  in
  let rows =
    List.mapi
      (fun i proto -> run_protocol ~rng:(Rng.split_at master (1910 + i)) net proto ~trials)
      protocols
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Exp.section
       (Printf.sprintf
          "T19: query dissemination as a distributed system (power-law overlay, %s peers)"
          (Sf_stats.Table.fmt_int_grouped n')));
  Buffer.add_string buf
    "Discrete-event simulation: per-message latency ~ Uniform(0.5, 1.5); the run\n\
     stops at the first delivery to the content holder.\n\n";
  Buffer.add_string buf
    (Table.render
       ~headers:[ "protocol"; "hit rate"; "mean messages"; "mean time to hit" ]
       ~rows:
         (List.map
            (fun r ->
              [
                r.name;
                Exp.fmt ~digits:2 r.hit_rate;
                Exp.fmt ~digits:0 r.mean_messages;
                Exp.fmt ~digits:1 r.mean_time;
              ])
            rows)
       ());
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Sf_stats.Plot.render ~x_log:true ~y_log:false ~x_label:"mean messages"
       ~y_label:"mean time to hit"
       (List.mapi
          (fun i r ->
            {
              Sf_stats.Plot.label = r.name;
              glyph = Sf_stats.Plot.default_glyphs.(i mod Array.length Sf_stats.Plot.default_glyphs);
              points = [ (Float.max 1. r.mean_messages, r.mean_time) ];
            })
          rows));
  let find name = List.find (fun r -> r.name = name) rows in
  let flood = find "flood ttl=7" in
  let walkers64 = find "64 walkers" in
  let walkers16 = find "16 walkers" in
  let checks =
    [
      ( Printf.sprintf "flooding reliable (hit rate %.2f >= 0.9)" flood.hit_rate,
        flood.hit_rate >= 0.9 );
      ( Printf.sprintf "64 walkers reliable (hit rate %.2f >= 0.8)" walkers64.hit_rate,
        walkers64.hit_rate >= 0.8 );
      ( Printf.sprintf "walkers cut traffic (%.0f < 0.7 x %.0f)" walkers64.mean_messages
          flood.mean_messages,
        walkers64.mean_messages < 0.7 *. flood.mean_messages );
      ( Printf.sprintf "flooding is faster (%.1f < %.1f)" flood.mean_time walkers64.mean_time,
        flood.mean_time < walkers64.mean_time );
      ( Printf.sprintf "more walkers, less waiting (%.1f < %.1f)" walkers64.mean_time
          walkers16.mean_time,
        walkers64.mean_time < walkers16.mean_time );
    ]
  in
  {
    Exp.id = "T19";
    title = "Flooding vs k-walkers vs percolation: the traffic/latency tradeoff";
    output = Buffer.contents buf;
    checks;
  }

(* ------------------------------------------------------------------ *)
(* T20: Cohen-Shenker square-root replication                          *)
(* ------------------------------------------------------------------ *)

let normalise weights =
  let total = Array.fold_left ( +. ) 0. weights in
  Array.map (fun w -> w /. total) weights

(* allocate [budget] replicas to items with the given weights, at
   least one each, largest remainders first *)
let allocate ~budget weights =
  let m = Array.length weights in
  let shares = normalise weights in
  let base = Array.map (fun s -> max 1 (int_of_float (s *. float_of_int budget))) shares in
  let used = Array.fold_left ( + ) 0 base in
  let leftover = max 0 (budget - used) in
  (* hand leftovers to the largest fractional parts *)
  let order = Array.init m Fun.id in
  Array.sort
    (fun i j ->
      compare
        (shares.(j) *. float_of_int budget -. Float.of_int base.(j))
        (shares.(i) *. float_of_int budget -. Float.of_int base.(i)))
    order;
  for i = 0 to leftover - 1 do
    let item = order.(i mod m) in
    base.(item) <- base.(item) + 1
  done;
  base

let place_replicas rng ~n ~count =
  let holders = Array.make n false in
  Array.iter
    (fun v -> holders.(v) <- true)
    (Sf_prng.Shuffle.sample_without_replacement rng ~k:(min count n) ~n);
  holders

let t20_sqrt_replication ~quick ~seed =
  let n = Exp.pick ~quick:3_000 ~full:20_000 quick in
  let queries = Exp.pick ~quick:40 ~full:150 quick in
  let m_items = 8 in
  let master = Rng.of_seed seed in
  let g =
    Sf_gen.Config_model.searchable_power_law (Rng.split_at master 2000) ~n ~exponent:2.3 ()
  in
  let net = Network.create (Sf_graph.Ugraph.of_digraph g) in
  let n' = Network.n_nodes net in
  (* steep popularity law so the square-root gain is visible *)
  let popularity = normalise (Array.init m_items (fun i -> 1. /. ((float_of_int (i + 1)) ** 2.))) in
  let budget = m_items * int_of_float (sqrt (float_of_int n')) in
  let policies =
    [
      ("uniform", Array.make m_items 1.);
      ("proportional", popularity);
      ("square-root", Array.map sqrt popularity);
    ]
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Exp.section
       (Printf.sprintf
          "T20: Cohen-Shenker replication - %d items, Zipf^2 popularity, %d replicas, %s peers"
          m_items budget
          (Sf_stats.Table.fmt_int_grouped n')));
  let results = Hashtbl.create 4 in
  let rows =
    List.mapi
      (fun pi (name, weights) ->
        let rng = Rng.split_at master (2010 + pi) in
        let counts = allocate ~budget weights in
        let popularity_sampler = Sf_prng.Discrete.Alias.create popularity in
        let costs = Sf_stats.Summary.create () in
        let misses = ref 0 in
        for q = 1 to queries do
          let qrng = Rng.split_at rng (100 + q) in
          let item = Sf_prng.Discrete.Alias.sample popularity_sampler qrng in
          (* fresh random placement per query: the comparison is over
             the placement ensemble, not one lucky draw (replica-set
             degree sums are heavy-tailed) *)
          let holders = place_replicas qrng ~n:n' ~count:counts.(item) in
          let source = 1 + Rng.int qrng n' in
          let res =
            Query_sim.query ~rng:qrng net
              (Query_sim.K_walkers { k = 1; ttl = 16 * n' })
              ~source ~holders
          in
          if res.Query_sim.hit then Sf_stats.Summary.add_int costs res.Query_sim.messages
          else incr misses
        done;
        Hashtbl.replace results name (Sf_stats.Summary.mean costs);
        [
          name;
          String.concat "," (Array.to_list (Array.map string_of_int counts));
          Exp.fmt ~digits:1 (Sf_stats.Summary.mean costs);
          Exp.fmt ~digits:1 (Sf_stats.Summary.ci95_halfwidth costs);
          string_of_int !misses;
        ])
      policies
  in
  Buffer.add_string buf
    (Table.render
       ~headers:[ "policy"; "replicas per item"; "mean walk cost"; "±95%"; "misses" ]
       ~rows ());
  let cost name = Hashtbl.find results name in
  (* theory: E[cost] ∝ Σ q_i / r_i; uniform and proportional tie at
     M/R (up to integer rounding), square-root wins by
     (Σ√q)²/M *)
  let sqrt_gain =
    let s = Array.fold_left (fun acc q -> acc +. sqrt q) 0. popularity in
    s *. s /. float_of_int m_items
  in
  Buffer.add_string buf
    (Printf.sprintf
       "\ntheory: uniform and proportional tie; square-root cuts the expected cost\n\
        by the factor (sum sqrt(q))^2 / M = %.2f.\n"
       sqrt_gain);
  let checks =
    ( Printf.sprintf "square-root beats uniform (%.0f < %.0f)" (cost "square-root")
        (cost "uniform"),
      cost "square-root" < cost "uniform" )
    ::
    (if quick then []
     else
       [
         ( Printf.sprintf "square-root beats proportional (%.0f < %.0f)" (cost "square-root")
             (cost "proportional"),
           cost "square-root" < cost "proportional" );
       ])
  in
  {
    Exp.id = "T20";
    title = "Square-root replication minimises random-walk search cost";
    output = Buffer.contents buf;
    checks;
  }

(* ------------------------------------------------------------------ *)
(* T22: churn                                                          *)
(* ------------------------------------------------------------------ *)

let t22_churn ~quick ~seed =
  let n = Exp.pick ~quick:3_000 ~full:15_000 quick in
  let trials = Exp.pick ~quick:15 ~full:40 quick in
  let master = Rng.of_seed seed in
  let g =
    Sf_gen.Config_model.searchable_power_law (Rng.split_at master 2200) ~n ~exponent:2.3 ()
  in
  let net = Network.create (Sf_graph.Ugraph.of_digraph g) in
  let n' = Network.n_nodes net in
  (* replicate the content modestly so queries are findable at all *)
  let replicas = max 8 (n' / 200) in
  let uptimes = Exp.pick ~quick:[ 1.0; 0.6 ] ~full:[ 1.0; 0.9; 0.75; 0.6; 0.45 ] quick in
  let protocols =
    [
      ("flood ttl=6", Query_sim.Flood { ttl = 6 });
      ("32 walkers", Query_sim.K_walkers { k = 32; ttl = n' / 8 });
      ("1 walker", Query_sim.K_walkers { k = 1; ttl = n' / 8 });
    ]
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Exp.section
       (Printf.sprintf
          "T22: lookups under churn (%s peers, %d replicas, mean downtime 10 latency units)"
          (Sf_stats.Table.fmt_int_grouped n')
          replicas));
  let hit_rates = Hashtbl.create 32 in
  let rows = ref [] in
  List.iteri
    (fun ui uptime ->
      List.iteri
        (fun pi (pname, protocol) ->
          let rng = Rng.split_at master (2210 + (ui * 10) + pi) in
          let hits = ref 0 in
          let dropped = Sf_stats.Summary.create () in
          for trial = 1 to trials do
            let trial_rng = Rng.split_at rng trial in
            let holders = place_replicas trial_rng ~n:n' ~count:replicas in
            let source = 1 + Rng.int trial_rng n' in
            let res =
              if uptime >= 1. then begin
                let r = Query_sim.query ~rng:trial_rng net protocol ~source ~holders in
                {
                  Sf_sim.Churn_sim.hit = r.Query_sim.hit;
                  hit_time = r.Query_sim.hit_time;
                  messages = r.Query_sim.messages;
                  dropped = r.Query_sim.dropped;
                  duration = r.Query_sim.duration;
                }
              end
              else begin
                let mean_down = 10. in
                let churn =
                  {
                    Sf_sim.Churn_sim.mean_up = uptime /. (1. -. uptime) *. mean_down;
                    mean_down;
                  }
                in
                Sf_sim.Churn_sim.query ~rng:trial_rng net churn protocol ~source ~holders
              end
            in
            if res.Sf_sim.Churn_sim.hit then incr hits;
            Sf_stats.Summary.add_int dropped res.Sf_sim.Churn_sim.dropped
          done;
          let rate = float_of_int !hits /. float_of_int trials in
          Hashtbl.replace hit_rates (pname, uptime) rate;
          rows :=
            [
              Exp.fmt ~digits:2 uptime;
              pname;
              Exp.fmt ~digits:2 rate;
              Exp.fmt ~digits:0 (Sf_stats.Summary.mean dropped);
            ]
            :: !rows)
        protocols)
    uptimes;
  Buffer.add_string buf
    (Table.render
       ~headers:[ "uptime"; "protocol"; "hit rate"; "mean dropped messages" ]
       ~rows:(List.rev !rows) ());
  let rate p u = try Hashtbl.find hit_rates (p, u) with Not_found -> nan in
  let low_uptime = List.nth uptimes (List.length uptimes - 1) in
  let checks =
    [
      ( "no churn: flooding always finds replicated content",
        rate "flood ttl=6" 1.0 >= 0.95 );
      ( Printf.sprintf "churn hurts the single walker (%.2f < %.2f)"
          (rate "1 walker" low_uptime) (rate "1 walker" 1.0),
        rate "1 walker" low_uptime < rate "1 walker" 1.0 );
      ( Printf.sprintf "redundancy buys robustness at uptime %.2f (flood %.2f >= 1-walker %.2f)"
          low_uptime
          (rate "flood ttl=6" low_uptime)
          (rate "1 walker" low_uptime),
        rate "flood ttl=6" low_uptime >= rate "1 walker" low_uptime );
      ( Printf.sprintf "many walkers beat one under churn (%.2f >= %.2f)"
          (rate "32 walkers" low_uptime) (rate "1 walker" low_uptime),
        rate "32 walkers" low_uptime >= rate "1 walker" low_uptime );
    ]
  in
  {
    Exp.id = "T22";
    title = "Churn: redundant dissemination survives, single walkers die";
    output = Buffer.contents buf;
    checks;
  }
