(** Experiments T11 and T13: the related-work baselines on "pure"
    power-law random graphs (Molloy–Reed), where local search {e can}
    exploit degree structure.

    T11 — Adamic et al.: the high-degree greedy beats the random walk,
    both sublinear, with exponents ordered as the mean-field analysis
    predicts (2(1−2/k) vs 3(1−2/k)).

    T13 — Sarshar et al. percolation search: replication along random
    walks plus probabilistic flooding finds content with high
    probability at sublinear message cost. *)

val t11_adamic : quick:bool -> seed:int -> Exp.result
val t13_percolation : quick:bool -> seed:int -> Exp.result
