let in_place rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation rng n =
  let a = Array.init n (fun i -> i) in
  in_place rng a;
  a

let array rng a =
  let b = Array.copy a in
  in_place rng b;
  b

let sample_without_replacement rng ~k ~n =
  if k < 0 || k > n then invalid_arg "Shuffle.sample_without_replacement: need 0 <= k <= n";
  (* Floyd's algorithm: for j in n-k..n-1, insert a uniform value from
     [0..j], replacing collisions with j itself. *)
  let chosen = Hashtbl.create (2 * k) in
  for j = n - k to n - 1 do
    let v = Rng.int rng (j + 1) in
    if Hashtbl.mem chosen v then Hashtbl.replace chosen j ()
    else Hashtbl.replace chosen v ()
  done;
  let out = Array.make k 0 and idx = ref 0 in
  Hashtbl.iter
    (fun v () ->
      out.(!idx) <- v;
      incr idx)
    chosen;
  out

let reservoir rng ~k seq =
  if k < 0 then invalid_arg "Shuffle.reservoir: k must be non-negative";
  let buf = ref [||] and seen = ref 0 in
  Seq.iter
    (fun x ->
      incr seen;
      if !seen <= k then
        buf := Array.append !buf [| x |]
      else begin
        let j = Rng.int rng !seen in
        if j < k then !buf.(j) <- x
      end)
    seq;
  !buf
