lib/prng/rng.mli:
