lib/prng/discrete.ml: Array Float Queue Rng
