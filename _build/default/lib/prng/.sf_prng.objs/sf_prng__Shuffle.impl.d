lib/prng/shuffle.ml: Array Hashtbl Rng Seq
