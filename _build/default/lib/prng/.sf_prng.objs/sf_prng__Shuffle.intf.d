lib/prng/shuffle.mli: Rng Seq
