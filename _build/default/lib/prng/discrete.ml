module Alias = struct
  type t = {
    prob : float array; (* acceptance probability of the home column *)
    alias : int array; (* fallback index of each column *)
  }

  let create weights =
    let n = Array.length weights in
    if n = 0 then invalid_arg "Alias.create: empty weights";
    let total = Array.fold_left ( +. ) 0. weights in
    Array.iter (fun w -> if w < 0. || Float.is_nan w then invalid_arg "Alias.create: negative weight") weights;
    if total <= 0. then invalid_arg "Alias.create: zero total weight";
    (* Scale to mean 1 and split columns into small/large worklists
       (Vose's stable construction). *)
    let scaled = Array.map (fun w -> w *. float_of_int n /. total) weights in
    let prob = Array.make n 1. and alias = Array.init n (fun i -> i) in
    let small = Queue.create () and large = Queue.create () in
    Array.iteri (fun i w -> Queue.push i (if w < 1. then small else large)) scaled;
    while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
      let s = Queue.pop small and l = Queue.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
      Queue.push l (if scaled.(l) < 1. then small else large)
    done;
    (* Leftovers are numerically ~1; treat as exactly 1. *)
    Queue.iter (fun i -> prob.(i) <- 1.) small;
    Queue.iter (fun i -> prob.(i) <- 1.) large;
    { prob; alias }

  let size t = Array.length t.prob

  let sample t rng =
    let i = Rng.int rng (Array.length t.prob) in
    if Rng.unit_float rng < t.prob.(i) then i else t.alias.(i)
end

module Fenwick = struct
  type t = {
    mutable tree : float array; (* 1-based Fenwick array *)
    mutable n : int;
  }

  let create ?(capacity = 16) () = { tree = Array.make (max capacity 1 + 1) 0.; n = 0 }

  let length t = t.n

  let ensure_capacity t needed =
    let cap = Array.length t.tree - 1 in
    if needed > cap then begin
      let cap' = max needed (2 * cap) in
      let tree' = Array.make (cap' + 1) 0. in
      Array.blit t.tree 0 tree' 0 (Array.length t.tree);
      t.tree <- tree'
    end

  (* Standard Fenwick update on the 1-based tree, bounded by [t.n]. *)
  let bump t i1 delta =
    let i = ref i1 in
    while !i <= t.n do
      t.tree.(!i) <- t.tree.(!i) +. delta;
      i := !i + (!i land - !i)
    done

  let add t i w =
    if i < 0 || i >= t.n then invalid_arg "Fenwick.add: index out of range";
    bump t (i + 1) w

  let prefix_sum t i1 =
    let acc = ref 0. and i = ref i1 in
    while !i > 0 do
      acc := !acc +. t.tree.(!i);
      i := !i - (!i land - !i)
    done;
    !acc

  let push t w =
    ensure_capacity t (t.n + 1);
    (* Appending slot i (1-based) must seed tree.(i) with the sum of
       the slots its node covers, (i - lowbit(i), i]: earlier bumps
       stopped at the old length and never touched this node. *)
    let i = t.n + 1 in
    let covered = prefix_sum t (i - 1) -. prefix_sum t (i - (i land -i)) in
    t.n <- i;
    t.tree.(i) <- covered +. w;
    t.n - 1

  let get t i =
    if i < 0 || i >= t.n then invalid_arg "Fenwick.get: index out of range";
    prefix_sum t (i + 1) -. prefix_sum t i

  let total t = prefix_sum t t.n

  let of_array weights =
    let t = create ~capacity:(Array.length weights) () in
    Array.iter (fun w -> ignore (push t w)) weights;
    t

  (* Descend the implicit tree to find the smallest index whose prefix
     sum exceeds the drawn mass. *)
  let sample t rng =
    let tot = total t in
    if tot <= 0. then invalid_arg "Fenwick.sample: zero total weight";
    let u = ref (Rng.unit_float rng *. tot) in
    let pos = ref 0 in
    let log_msb =
      let rec top k = if 2 * k <= t.n then top (2 * k) else k in
      if t.n = 0 then 0 else top 1
    in
    let step = ref log_msb in
    while !step > 0 do
      let next = !pos + !step in
      if next <= t.n && t.tree.(next) < !u then begin
        u := !u -. t.tree.(next);
        pos := next
      end;
      step := !step / 2
    done;
    (* [pos] is the largest index with prefix sum < u; the sampled slot
       is the next one.  Clamp for the measure-zero edge case u = total. *)
    min !pos (t.n - 1)
end
