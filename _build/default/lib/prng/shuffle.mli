(** Random permutations and subset sampling. *)

val in_place : Rng.t -> 'a array -> unit
(** Fisher–Yates shuffle; uniform over all permutations. *)

val permutation : Rng.t -> int -> int array
(** [permutation rng n] is a uniform permutation of [0 .. n-1]. *)

val array : Rng.t -> 'a array -> 'a array
(** Shuffled copy; the input is untouched. *)

val sample_without_replacement : Rng.t -> k:int -> n:int -> int array
(** [sample_without_replacement rng ~k ~n] draws [k] distinct values
    from [0 .. n-1], uniform over all k-subsets, in O(k) expected space
    and time (Floyd's algorithm). Order is not specified.
    @raise Invalid_argument if [k < 0 || k > n]. *)

val reservoir : Rng.t -> k:int -> 'a Seq.t -> 'a array
(** Uniform sample of [k] items from a sequence of unknown length
    (standard reservoir algorithm). Returns fewer than [k] items only
    when the sequence itself is shorter than [k]. *)
