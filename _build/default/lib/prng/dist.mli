(** Scalar probability distributions over a {!Rng.t} stream.

    Each sampler consumes randomness from the generator it is given and
    returns one variate. Samplers are exact where an exact method is
    cheap (inversion, rejection) and use standard approximations
    otherwise; the documentation of each function states the method. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [lo, hi). *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with rate [rate] (mean [1/rate]), by inversion.
    @raise Invalid_argument if [rate <= 0]. *)

val geometric : Rng.t -> p:float -> int
(** Number of failures before the first success in Bernoulli([p])
    trials; support [0, 1, 2, ...]. Sampled by inversion, exact for all
    [0 < p <= 1]. @raise Invalid_argument otherwise. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** Binomial(n, p) by summing Bernoulli draws for small [n] and by the
    inversion-from-geometric shortcut when [p] is small; exact. *)

val poisson : Rng.t -> mean:float -> int
(** Poisson by Knuth multiplication for [mean <= 30] and by
    normal-rounded rejection above (approximate but accurate to the
    digits any experiment here reads). *)

val normal : Rng.t -> mu:float -> sigma:float -> float
(** Gaussian by the polar Marsaglia method. *)

val pareto : Rng.t -> alpha:float -> x_min:float -> float
(** Continuous Pareto: density proportional to [x^-(alpha+1)] on
    [x >= x_min]; by inversion. @raise Invalid_argument if
    [alpha <= 0. || x_min <= 0.]. *)

val zeta : Rng.t -> alpha:float -> int
(** Discrete power law ("zeta" / Zipf with unbounded support):
    [P(X = j) ∝ j^-alpha] for [j >= 1], sampled by Devroye's
    rejection-from-Pareto method; exact. Requires [alpha > 1]. *)

val zipf_bounded : Rng.t -> alpha:float -> n:int -> int
(** Power law truncated to [1..n]: [P(X = j) ∝ j^-alpha]. Sampled by
    rejection from {!zeta} when [alpha > 1], by inversion on the
    precomputed CDF otherwise (cost O(n) setup per call — prefer
    {!Discrete} for repeated use with [alpha <= 1]). *)

val discrete_power_law_sequence :
  Rng.t -> exponent:float -> d_min:int -> d_max:int -> n:int -> int array
(** [discrete_power_law_sequence rng ~exponent ~d_min ~d_max ~n] draws
    [n] i.i.d. degrees with [P(d) ∝ d^-exponent] on [d_min..d_max],
    using one shared CDF table (O(d_max) setup, O(log d_max) per
    draw). *)
