let uniform rng ~lo ~hi = lo +. Rng.unit_float rng *. (hi -. lo)

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  -.log1p (-.Rng.unit_float rng) /. rate

let geometric rng ~p =
  if p <= 0. || p > 1. then invalid_arg "Dist.geometric: need 0 < p <= 1";
  if p = 1. then 0
  else
    (* Inversion: floor(log(U) / log(1-p)) has the geometric law. *)
    let u = 1. -. Rng.unit_float rng in
    int_of_float (floor (log u /. log1p (-.p)))

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Dist.binomial: n must be non-negative";
  if p <= 0. then 0
  else if p >= 1. then n
  else if p <= 0.05 && n > 50 then begin
    (* Skip over failures geometrically: exact and O(np) expected. *)
    let count = ref 0 and i = ref (geometric rng ~p) in
    while !i < n do
      incr count;
      i := !i + 1 + geometric rng ~p
    done;
    !count
  end
  else begin
    let count = ref 0 in
    for _ = 1 to n do
      if Rng.bernoulli rng p then incr count
    done;
    !count
  end

let rec normal rng ~mu ~sigma =
  let u = (2. *. Rng.unit_float rng) -. 1. in
  let v = (2. *. Rng.unit_float rng) -. 1. in
  let s = (u *. u) +. (v *. v) in
  if s >= 1. || s = 0. then normal rng ~mu ~sigma
  else mu +. (sigma *. u *. sqrt (-2. *. log s /. s))

let poisson rng ~mean =
  if mean < 0. then invalid_arg "Dist.poisson: mean must be non-negative";
  if mean = 0. then 0
  else if mean <= 30. then begin
    let limit = exp (-.mean) in
    let k = ref 0 and prod = ref (Rng.unit_float rng) in
    while !prod > limit do
      incr k;
      prod := !prod *. Rng.unit_float rng
    done;
    !k
  end
  else
    let x = normal rng ~mu:mean ~sigma:(sqrt mean) in
    max 0 (int_of_float (Float.round x))

let pareto rng ~alpha ~x_min =
  if alpha <= 0. || x_min <= 0. then invalid_arg "Dist.pareto: need alpha > 0 and x_min > 0";
  x_min *. ((1. -. Rng.unit_float rng) ** (-1. /. alpha))

(* Devroye (1986), ch. X.6: rejection sampler for the zeta distribution
   P(X = j) proportional to j^-alpha, alpha > 1. *)
let zeta rng ~alpha =
  if alpha <= 1. then invalid_arg "Dist.zeta: need alpha > 1";
  let b = 2. ** (alpha -. 1.) in
  let rec draw () =
    let u = Rng.unit_float rng and v = Rng.unit_float rng in
    let x = floor (u ** (-1. /. (alpha -. 1.))) in
    if x < 1. || x > 1e18 then draw ()
    else
      let t = (1. +. (1. /. x)) ** (alpha -. 1.) in
      if v *. x *. (t -. 1.) /. (b -. 1.) <= t /. b then int_of_float x
      else draw ()
  in
  draw ()

let cdf_table ~alpha ~d_min ~d_max =
  if d_min < 1 || d_max < d_min then invalid_arg "Dist: need 1 <= d_min <= d_max";
  let len = d_max - d_min + 1 in
  let cdf = Array.make len 0. in
  let total = ref 0. in
  for i = 0 to len - 1 do
    total := !total +. (float_of_int (d_min + i) ** -.alpha);
    cdf.(i) <- !total
  done;
  (cdf, !total)

let sample_cdf rng cdf total d_min =
  let u = Rng.unit_float rng *. total in
  (* Binary search for the first index with cdf.(i) >= u. *)
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  d_min + !lo

let zipf_bounded rng ~alpha ~n =
  if n < 1 then invalid_arg "Dist.zipf_bounded: n must be >= 1";
  if alpha > 1. then begin
    let rec draw () =
      let x = zeta rng ~alpha in
      if x <= n then x else draw ()
    in
    draw ()
  end
  else
    let cdf, total = cdf_table ~alpha ~d_min:1 ~d_max:n in
    sample_cdf rng cdf total 1

let discrete_power_law_sequence rng ~exponent ~d_min ~d_max ~n =
  let cdf, total = cdf_table ~alpha:exponent ~d_min ~d_max in
  Array.init n (fun _ -> sample_cdf rng cdf total d_min)
