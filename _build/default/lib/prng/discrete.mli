(** Sampling from weighted discrete distributions.

    Two structures cover the needs of the graph generators:

    - {!Alias}: Walker's alias method for a {e fixed} weight vector —
      O(n) setup, O(1) per draw. Used for degree sequences and bounded
      power laws that are sampled many times.
    - {!Fenwick}: a binary indexed tree over {e mutable} non-negative
      weights — O(log n) update and draw, with dynamic growth. Used for
      preferential attachment when weights (degrees) change as the
      graph grows and are not expressible with the endpoint-list trick.
*)

module Alias : sig
  type t

  val create : float array -> t
  (** [create weights] builds a sampler for [P(i) ∝ weights.(i)].
      @raise Invalid_argument on empty input, negative weights or an
      all-zero vector. *)

  val size : t -> int

  val sample : t -> Rng.t -> int
  (** One index drawn with the encoded distribution, O(1). *)
end

module Fenwick : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Empty tree; [capacity] pre-sizes the backing array. *)

  val of_array : float array -> t

  val length : t -> int
  (** Number of slots (indices are [0 .. length-1]). *)

  val push : t -> float -> int
  (** Append a slot with the given weight; returns its index. *)

  val add : t -> int -> float -> unit
  (** [add t i w] increases slot [i]'s weight by [w] (may be negative as
      long as the slot stays non-negative). *)

  val get : t -> int -> float

  val total : t -> float

  val sample : t -> Rng.t -> int
  (** Index drawn with probability proportional to its weight,
      O(log n). @raise Invalid_argument if the total weight is zero. *)
end
